// Contract checking for the natscale library.
//
// Following the C++ Core Guidelines (I.5/I.7), public interfaces state their
// preconditions and postconditions explicitly.  Violations throw
// `natscale::contract_error` rather than aborting, so that the test suite can
// exercise failure paths (failure injection) and so that a host application
// embedding the library can recover from misuse at module boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace natscale {

/// Thrown when a precondition, postcondition or internal invariant of the
/// library is violated.  The message names the violated condition and the
/// function that detected it.
class contract_error : public std::logic_error {
public:
    explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* func) {
    throw contract_error(std::string(kind) + " violated: (" + cond + ") in " + func);
}
}  // namespace detail

}  // namespace natscale

/// Precondition check: validates arguments at function entry.
#define NATSCALE_EXPECTS(cond)                                                     \
    do {                                                                           \
        if (!(cond)) ::natscale::detail::contract_failure("precondition", #cond,   \
                                                          __func__);               \
    } while (false)

/// Postcondition check: validates results before returning them.
#define NATSCALE_ENSURES(cond)                                                     \
    do {                                                                           \
        if (!(cond)) ::natscale::detail::contract_failure("postcondition", #cond,  \
                                                          __func__);               \
    } while (false)

/// Internal invariant check; cheap enough to keep enabled in release builds.
#define NATSCALE_CHECK(cond)                                                       \
    do {                                                                           \
        if (!(cond)) ::natscale::detail::contract_failure("invariant", #cond,      \
                                                          __func__);               \
    } while (false)
