#include "util/math.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace natscale {

void KahanSum::add(double x) noexcept {
    const double y = x - comp_;
    const double t = sum_ + y;
    comp_ = (t - sum_) - y;
    sum_ = t;
}

double mean(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    KahanSum s;
    for (double x : xs) s.add(x);
    return s.value() / static_cast<double>(xs.size());
}

double population_variance(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    const double mu = mean(xs);
    KahanSum s;
    for (double x : xs) s.add((x - mu) * (x - mu));
    return s.value() / static_cast<double>(xs.size());
}

double population_stddev(std::span<const double> xs) noexcept {
    return std::sqrt(population_variance(xs));
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
    NATSCALE_EXPECTS(count >= 2);
    NATSCALE_EXPECTS(lo <= hi);
    std::vector<double> out(count);
    const double step = (hi - lo) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;  // exact endpoint despite rounding
    return out;
}

std::vector<double> geomspace(double lo, double hi, std::size_t count) {
    NATSCALE_EXPECTS(count >= 2);
    NATSCALE_EXPECTS(lo > 0.0 && lo <= hi);
    std::vector<double> out(count);
    const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
    double value = lo;
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = value;
        value *= ratio;
    }
    out.back() = hi;
    return out;
}

}  // namespace natscale
