// Writers for gnuplot-style .dat series files.
//
// Each bench binary, in addition to printing its table to stdout, can dump the
// underlying series to `<output_dir>/<name>.dat` so the paper's figures can be
// re-plotted directly (`plot "fig3_mk.dat" using 1:2 with lines`).
#pragma once

#include <string>
#include <vector>

namespace natscale {

struct DataSeries {
    std::string name;                        // series title (gnuplot comment)
    std::vector<std::string> column_names;   // axis labels (gnuplot comment)
    std::vector<std::vector<double>> rows;   // one inner vector per point
};

/// Writes the series as whitespace-separated columns with '#' comments.
/// Throws std::runtime_error if the file cannot be written or if rows are
/// ragged with respect to column_names.
void write_dat(const std::string& path, const DataSeries& series);

/// Writes several series into one file separated by two blank lines (gnuplot
/// "index" convention), e.g. the family of ICD curves of Fig. 3 left.
void write_dat_blocks(const std::string& path, const std::vector<DataSeries>& blocks);

}  // namespace natscale
