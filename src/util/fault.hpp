// NATSCALE_FAULT — the deterministic fault-injection hook compiled into
// every binary that links the library.
//
// Chaos testing the distributed sweep (and the durable-save path) needs
// faults that fire at a *chosen* moment, not whenever a random killer gets
// lucky.  The hook reads one environment variable:
//
//   NATSCALE_FAULT=<kind>[:nth=N][:ms=M][:spawns=K]
//
//     kind     what to break (see FaultKind)
//     nth      fire on the process's N-th opportunity (1-based; default 1).
//              For a sweep worker the ordinal counts assigned tasks, so
//              "the 2nd task this worker runs" is deterministic.
//     ms       duration parameter for delay/stall kinds (milliseconds)
//     spawns   only processes with spawn index < K fire (default: all).
//              The coordinator numbers every worker it spawns through the
//              NATSCALE_DIST_SPAWN variable, monotonically across respawns,
//              so "crash the first two workers, let their replacements
//              live" is expressible — without it a crash-on-first-task
//              fault would also kill every replacement and livelock.
//
// The hook is deliberately tiny and env-driven: the injection sites call
// fault_fires() with their kind and a local ordinal, and an unset or
// unparsable NATSCALE_FAULT means every call is false.  Faults fire in the
// process that parses the variable — the coordinator never fires worker
// kinds because it never reaches those injection sites.
#pragma once

#include <cstdint>
#include <string>

namespace natscale {

enum class FaultKind : std::uint32_t {
    none = 0,
    crash_before_reply,  // worker: SIGKILL itself after computing, before replying
    crash_mid_frame,     // worker: send half the reply frame, then SIGKILL itself
    delay,               // worker: sleep ms before replying (heartbeats keep going)
    corrupt_partial,     // worker: flip bytes in the reply payload (checksum trips)
    stall,               // worker: stop heartbeating and hang (lease must expire)
    duplicate_reply,     // worker: send the identical reply frame twice
    torn_write,          // atomic_file: write half the temp file, skip the rename
};

struct FaultSpec {
    FaultKind kind = FaultKind::none;
    std::uint64_t nth = 1;       // 1-based ordinal the fault fires on
    std::uint64_t ms = 0;        // delay/stall duration (0 = kind's default)
    std::uint64_t spawns = ~std::uint64_t{0};  // fire only when spawn index < this
};

/// Parses NATSCALE_FAULT.  Unset, empty or unparsable -> kind == none
/// (injection must never break a production run).
FaultSpec fault_spec_from_env();

/// Spawn index of this process: NATSCALE_DIST_SPAWN, 0 when unset (a
/// process nobody numbered counts as the first spawn).
std::uint64_t fault_spawn_index_from_env();

/// True when the env-configured fault is `kind`, scoped to this process's
/// spawn index, and `ordinal` is the configured nth opportunity.
bool fault_fires(FaultKind kind, std::uint64_t ordinal);

/// The env-configured spec (parsed once per call; callers on hot paths
/// should cache).  Exposed so injection sites can read `ms`.
FaultSpec current_fault_spec();

const char* to_string(FaultKind kind);

}  // namespace natscale
