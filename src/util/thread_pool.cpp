#include "util/thread_pool.hpp"

#include <algorithm>

namespace natscale {

std::size_t ThreadPool::resolve_concurrency(std::size_t num_threads) {
    return num_threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                            : num_threads;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
    num_threads = resolve_concurrency(num_threads);
    workers_.reserve(num_threads - 1);
    for (std::size_t worker = 1; worker < num_threads; ++worker) {
        workers_.emplace_back([this, worker] { worker_loop(worker); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_workers_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_workers) {
    if (count == 0) return;
    if (workers_.empty() || count == 1 || max_workers <= 1) {
        // No pool threads (concurrency 1), nothing to share, or capped to
        // the calling thread: plain loop.
        for (std::size_t index = 0; index < count; ++index) body(0, index);
        return;
    }

    Job job;
    job.count = count;
    job.worker_limit = max_workers;
    job.body = &body;

    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
    wake_workers_.notify_all();

    drain(job, /*worker=*/0, lock);  // the calling thread participates as worker 0

    job_done_.wait(lock, [&] { return active_workers_ == 0 && job.finished == job.next; });
    job_ = nullptr;
    if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
    parallel_for(count, [&body](std::size_t, std::size_t index) { body(index); });
}

void ThreadPool::worker_loop(std::size_t worker) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_workers_.wait(
            lock, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
        if (stop_) return;
        seen = generation_;
        Job& job = *job_;
        if (worker >= job.worker_limit) continue;  // capped out of this call
        ++active_workers_;
        drain(job, worker, lock);
        --active_workers_;
        if (active_workers_ == 0 && job.finished == job.next) job_done_.notify_all();
    }
}

void ThreadPool::drain(Job& job, std::size_t worker, std::unique_lock<std::mutex>& lock) {
    // One index per claim: the sweep's bodies are full reachability scans, so
    // the per-claim lock cost is noise, and dynamic assignment balances the
    // wildly uneven per-Delta workloads (small Delta means many more
    // snapshots to scan).
    while (job.error == nullptr && job.next < job.count) {
        const std::size_t index = job.next++;
        lock.unlock();
        std::exception_ptr error;
        try {
            (*job.body)(worker, index);
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        ++job.finished;
        if (error != nullptr && job.error == nullptr) job.error = error;
    }
}

}  // namespace natscale
