// A small fixed-size thread pool built for deterministic data-parallel
// fan-out (the multi-Delta sweep of core/delta_sweep).
//
// The only primitive is parallel_for: run body(worker, index) for every
// index in [0, count), distributing indices dynamically over the workers
// AND the calling thread.  Determinism is the caller's contract: bodies
// must write only to per-index (or per-worker) slots, so the result is
// independent of the number of threads and of the scheduling order.  The
// pool guarantees that `worker` ids are dense in [0, concurrency()) and
// that no two bodies run concurrently with the same worker id, which makes
// per-worker scratch state (e.g. a reachability engine's O(n^2) tables)
// safe without locks.
//
// A pool of concurrency 1 spawns no threads at all: parallel_for degrades
// to a plain sequential loop on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace natscale {

class ThreadPool {
public:
    /// `num_threads` is the total concurrency, counting the calling thread
    /// of parallel_for; 0 picks the hardware concurrency (at least 1).
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// The "0 = hardware concurrency (at least 1)" resolution rule the
    /// constructor applies, exposed so callers sizing related structures
    /// (or capping parallel_for) share the single definition.
    static std::size_t resolve_concurrency(std::size_t num_threads);

    /// Total number of threads that execute bodies, calling thread included.
    std::size_t concurrency() const noexcept { return workers_.size() + 1; }

    /// Runs body(worker, index) for every index in [0, count); returns when
    /// all bodies have finished.  Rethrows the first exception thrown by a
    /// body (remaining indices may be skipped).  Not reentrant: bodies must
    /// not call parallel_for on the same pool.
    ///
    /// `max_workers` caps how many threads participate in THIS call (the
    /// calling thread always does; pool workers with id >= max_workers sit
    /// it out).  Lets one pool serve fan-outs with different concurrency
    /// budgets without re-spawning threads.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t worker, std::size_t index)>& body,
                      std::size_t max_workers = ~std::size_t{0});

    /// Convenience overload for bodies that need no per-worker scratch.
    void parallel_for(std::size_t count, const std::function<void(std::size_t index)>& body);

private:
    struct Job {
        std::size_t count = 0;
        std::size_t next = 0;       // next unclaimed index (guarded by mutex_)
        std::size_t finished = 0;   // bodies completed (guarded by mutex_)
        std::size_t worker_limit = 0;  // workers with id >= limit skip the job
        const std::function<void(std::size_t, std::size_t)>* body = nullptr;
        std::exception_ptr error;   // first failure (guarded by mutex_)
    };

    void worker_loop(std::size_t worker);

    /// Claims and runs indices of the current job until exhausted.  `lock`
    /// must hold mutex_ on entry; it is released around each body call and
    /// held again on return.
    void drain(Job& job, std::size_t worker, std::unique_lock<std::mutex>& lock);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_workers_;
    std::condition_variable job_done_;
    Job* job_ = nullptr;            // non-null while a parallel_for is active
    std::uint64_t generation_ = 0;  // bumped per job so workers wake exactly once
    std::size_t active_workers_ = 0;
    bool stop_ = false;
};

}  // namespace natscale
