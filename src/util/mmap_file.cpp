#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define NATSCALE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace natscale {

namespace {

[[noreturn]] void fail(const std::string& path, const char* op) {
    throw std::runtime_error("cannot " + std::string(op) + " '" + path + "': " +
                             std::strerror(errno));
}

#ifdef NATSCALE_HAVE_MMAP
std::size_t page_size() noexcept {
    static const std::size_t size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return size;
}
#endif

}  // namespace

MappedFile MappedFile::open(const std::string& path) {
    MappedFile file;
#ifdef NATSCALE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd < 0) fail(path, "open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail(path, "stat");
    }
    file.size_ = static_cast<std::size_t>(st.st_size);
    if (file.size_ > 0) {
        // MAP_PRIVATE + PROT_READ: pages are clean and evictable, and
        // release() below may drop them at will — they refault from the
        // page cache on the next access.
        void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            fail(path, "mmap");
        }
        file.data_ = static_cast<const std::byte*>(addr);
        file.mapped_ = true;
    }
    ::close(fd);  // the mapping keeps its own reference
#else
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) throw std::runtime_error("cannot open '" + path + "'");
    const auto end = is.tellg();
    if (end < 0) throw std::runtime_error("cannot stat '" + path + "'");
    file.fallback_.resize(static_cast<std::size_t>(end));
    is.seekg(0);
    if (!file.fallback_.empty() &&
        !is.read(reinterpret_cast<char*>(file.fallback_.data()),
                 static_cast<std::streamsize>(file.fallback_.size()))) {
        throw std::runtime_error("cannot read '" + path + "'");
    }
    file.data_ = file.fallback_.data();
    file.size_ = file.fallback_.size();
#endif
    return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this == &other) return *this;
#ifdef NATSCALE_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<std::byte*>(data_), size_);
#endif
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
    return *this;
}

MappedFile::~MappedFile() {
#ifdef NATSCALE_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<std::byte*>(data_), size_);
#endif
}

void MappedFile::advise_sequential([[maybe_unused]] std::size_t offset,
                                   [[maybe_unused]] std::size_t length) const noexcept {
#ifdef NATSCALE_HAVE_MMAP
    if (!mapped_ || length == 0 || offset >= size_) return;
    const std::size_t page = page_size();
    const std::size_t begin = offset / page * page;
    const std::size_t end = std::min(size_, offset + length);
    ::posix_madvise(const_cast<std::byte*>(data_) + begin, end - begin,
                    POSIX_MADV_SEQUENTIAL);
#endif
}

void MappedFile::release([[maybe_unused]] std::size_t offset,
                         [[maybe_unused]] std::size_t length) const noexcept {
#ifdef NATSCALE_HAVE_MMAP
    if (!mapped_ || offset >= size_) return;
    const std::size_t page = page_size();
    // Shrink to whole pages: keep boundary pages that also hold live bytes.
    const std::size_t begin = (offset + page - 1) / page * page;
    const std::size_t end = std::min(size_, offset + length) / page * page;
    if (begin >= end) return;
    ::madvise(const_cast<std::byte*>(data_) + begin, end - begin, MADV_DONTNEED);
#endif
}

}  // namespace natscale
