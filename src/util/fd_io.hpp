// Retry-hardened file-descriptor I/O: the one place the EINTR and
// partial-transfer loops of every socket and file path live.
//
// POSIX read()/write()/send()/recv() may transfer fewer bytes than asked
// and may fail with EINTR when a signal lands mid-call; every call site
// that open-codes the retry loop is a latent bug (a missed EINTR under a
// SIGALRM-driven profiler, a short write on a full socket buffer).  The
// service layer (blocking client, epoll daemon), the distributed sweep
// (coordinator/worker sockets) and the durable-save path (util/atomic_file)
// all route through these helpers instead.
//
// Two families:
//   *_all    — blocking fds: loop until every byte moved (or a real error).
//   *_retry  — one transfer attempt with EINTR retried; EAGAIN/EWOULDBLOCK
//              pass through, so non-blocking event loops keep their
//              semantics while sharing the signal hardening.
//
// All helpers leave errno set on failure and never throw: the callers own
// their error vocabulary (protocol_error, io_error, plain errno strings).
#pragma once

#include <sys/types.h>

#include <cstddef>

namespace natscale::fdio {

/// Blocking send() of the whole buffer (MSG_NOSIGNAL: a dead peer yields
/// EPIPE, never SIGPIPE).  Retries EINTR and partial sends; false on any
/// other error, with errno set.
bool send_all(int fd, const void* data, std::size_t size) noexcept;

/// Blocking write() of the whole buffer (regular files, pipes).  Retries
/// EINTR and partial writes; false on any other error, with errno set.
bool write_all(int fd, const void* data, std::size_t size) noexcept;

/// One recv() with EINTR retried.  Returns the byte count (0 = orderly
/// peer shutdown) or -1 with errno set (EAGAIN/EWOULDBLOCK included, for
/// non-blocking fds).
ssize_t recv_retry(int fd, void* buffer, std::size_t capacity) noexcept;

/// One read() with EINTR retried; same contract as recv_retry.
ssize_t read_retry(int fd, void* buffer, std::size_t capacity) noexcept;

/// One send() (MSG_NOSIGNAL) with EINTR retried: the non-blocking flush
/// loops' primitive.  Returns the byte count or -1 with errno set
/// (EAGAIN/EWOULDBLOCK included).
ssize_t send_retry(int fd, const void* data, std::size_t size) noexcept;

}  // namespace natscale::fdio
