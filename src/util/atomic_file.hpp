// Durable atomic file replacement: write-temp, fsync, rename, fsync-dir.
//
// A bare `ofstream << rename` is atomic against concurrent *readers* but
// not against power loss: the rename can reach the directory before the
// data reaches the platter, leaving a correctly-named file full of zeros
// (or half a checkpoint) after a crash.  The durable sequence is
//
//   1. write  <path>.tmp.<pid>
//   2. fsync  the temp file          (data + inode on stable storage)
//   3. rename tmp -> path            (atomic visibility switch)
//   4. fsync  the containing dir     (the new directory entry itself)
//
// so at every instant `path` is either the complete old file or the
// complete new one — torn snapshots are impossible, crash or no crash.
// This is the single definition used by the online-engine checkpoints
// (online/checkpoint) and the daemon's --state-dir persistence
// (service/server).
//
// Fault hook: while NATSCALE_FAULT=torn_write[:nth=N] is set, every call
// from the process's Nth one on writes only half the temp file and returns
// without renaming — exactly the observable state of a crash between
// steps 1 and 3 (a crashed process never saves again, hence every call,
// not just the Nth; clearing the variable is the restart).  Tests use it
// to prove the target file survives an interrupted save
// (tests/test_atomic_file.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace natscale {

/// Durably replaces `path` with `bytes` via the temp+fsync+rename+dirsync
/// sequence above.  Throws std::runtime_error (with errno detail) on any
/// failure; the temp file is removed on the error paths that leave one.
void atomic_write_file(const std::string& path, std::span<const std::byte> bytes);

}  // namespace natscale
