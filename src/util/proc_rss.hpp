// Process resident-set-size introspection (Linux /proc; 0.0 elsewhere).
//
// Used by the memory-bound scale tests (tests/test_sparse_scale.cpp, the
// streaming-loader regression test) and the dense-vs-sparse crossover bench
// to put real memory numbers next to timings.  Not a profiling substitute:
// peak_rss_mib() is the process-lifetime high-water mark (monotone — a
// later measurement inherits every earlier allocation's peak), and
// current_rss_mib() deltas undercount when the allocator satisfies new
// requests from previously-freed arena pages.
#pragma once

namespace natscale {

/// Peak resident set size of this process in MiB (Linux VmHWM), or 0.0 when
/// the proc interface is unavailable.  Monotone over the process lifetime.
double peak_rss_mib();

/// Current resident set size in MiB (Linux VmRSS), or 0.0 when unavailable.
double current_rss_mib();

}  // namespace natscale
