// Small numeric helpers used throughout the library: descriptive statistics,
// grid construction for the aggregation-period sweeps, and numerically careful
// summation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace natscale {

/// Kahan-compensated accumulator.  The distance statistics of Fig. 2 sum up
/// to ~1e13 terms of widely varying magnitude; naive summation would lose
/// several digits.
class KahanSum {
public:
    void add(double x) noexcept;
    double value() const noexcept { return sum_; }
    KahanSum& operator+=(double x) noexcept {
        add(x);
        return *this;
    }

private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs) noexcept;

/// Population variance (divides by n); 0 for fewer than 1 element.
double population_variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double population_stddev(std::span<const double> xs) noexcept;

/// `count` evenly spaced values over [lo, hi] inclusive.  count >= 2.
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` geometrically spaced values over [lo, hi] inclusive.
/// Preconditions: 0 < lo <= hi, count >= 2.
std::vector<double> geomspace(double lo, double hi, std::size_t count);

/// Integer ceiling division for positive operands.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
}

/// Sum of the arithmetic progression a + (a+1) + ... + b, 0 if b < a.
/// Used by the distance accumulator to integrate d_time over stretches of
/// start windows in O(1).
constexpr double arithmetic_series(std::int64_t a, std::int64_t b) {
    if (b < a) return 0.0;
    const double n = static_cast<double>(b - a + 1);
    return n * (static_cast<double>(a) + static_cast<double>(b)) / 2.0;
}

}  // namespace natscale
