// Runtime-dispatched SIMD kernels for the packed reachability hot loops.
//
// The dense backward DP (temporal/reachability.hpp) spends almost all of its
// time in one data-parallel statement — `row[j] = min(row[j], wrow[j] + 1)`
// over a contiguous span of packed uint64 (arrival_rank << 32 | hops) cells —
// and the sparse backend's candidate generation is a 16-byte-record copy that
// adds 1 to the hops lane.  Both are pure unsigned integer operations, so a
// vector implementation is bit-identical to the scalar loop by construction:
// there is no floating point, no reassociation, no per-lane control flow.
//
// This header exposes those two operations behind one function-pointer table
// resolved once per process:
//
//   isa        packed u64 min            availability
//   ---------  ------------------------  -----------------------------------
//   scalar     plain loop                always (the only path on other ISAs)
//   avx2       vpcmpgtq sign-flip trick  x86-64 with AVX2 (no unsigned 64-bit
//              + vpblendvb               min below AVX-512, so compare in the
//                                        signed domain after XOR 1<<63)
//   avx512     vpminuq (512-bit)         x86-64 with AVX-512F (masked tail,
//                                        no scalar remainder loop at all)
//   neon       vcgtq_u64 + vbslq_u64     AArch64 (NEON is baseline there)
//
// Selection order: NATSCALE_SIMD environment variable if set
// (auto|scalar|avx2|avx512|neon), else the strongest ISA the CPU reports
// (CPUID via __builtin_cpu_supports on x86-64; NEON unconditionally on
// AArch64).  Requesting an unsupported ISA falls back to the strongest
// supported one with a one-time stderr warning — a forced-path CI leg on the
// wrong hardware degrades loudly instead of crashing.  set_simd_isa() is the
// programmatic override behind the `--simd=` CLI flag and the bench suite;
// tests iterate supported_simd_isas() to pin every path that can run here.
//
// Every implementation of every op produces byte-identical output, so the
// differential suites (tests/test_simd.cpp, scalar-vs-ISA over the whole
// generator corpus) can require bitwise equality, not approximation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace natscale {

enum class SimdIsa {
    scalar,  ///< portable fallback, always available
    avx2,    ///< x86-64 AVX2 (unsigned min emulated via signed compare)
    avx512,  ///< x86-64 AVX-512F (native vpminuq + masked tails)
    neon,    ///< AArch64 Advanced SIMD
};

/// Lower-case name used by NATSCALE_SIMD, the --simd flag and the benches.
const char* to_string(SimdIsa isa);

/// Parses "scalar" / "avx2" / "avx512" / "neon"; returns false on anything
/// else ("auto" is not an ISA — resolve it with detect_simd_isa()).
bool parse_simd_isa(const std::string& text, SimdIsa& out);

/// True when this machine can execute `isa` (scalar always can).
bool simd_isa_supported(SimdIsa isa);

/// Strongest ISA the CPU supports, ignoring every override.
SimdIsa detect_simd_isa();

/// Every ISA simd_isa_supported() accepts here, scalar first — the loop the
/// differential tests and the bench suite iterate.
std::vector<SimdIsa> supported_simd_isas();

/// ISA the kernels below currently dispatch to, after the NATSCALE_SIMD
/// environment override and any set_simd_isa() call.
SimdIsa active_simd_isa();

/// Forces the dispatch to `isa`.  Returns false (and changes nothing) when
/// the machine cannot execute it.  Not thread-safe against concurrent scans:
/// callers (CLI startup, the bench harness, tests) switch between scans.
bool set_simd_isa(SimdIsa isa);

namespace simd {

/// The two hot operations, one pointer each.  All implementations are
/// bit-exact; the table only changes which instructions compute the result.
struct Ops {
    /// row[j] = min(row[j], wrow[j] + 1) over width unsigned 64-bit cells
    /// (the dense DP relaxation; +1 never wraps — see reachability.hpp, the
    /// unreachable sentinel has zero low bits).  row and wrow must not alias.
    void (*packed_min_add1)(std::uint64_t* row, const std::uint64_t* wrow,
                            std::size_t width);

    /// Copies `count` 16-byte records {u32 a, u32 b, u64 c} from src to dst,
    /// adding 1 to the `b` lane of every record (the sparse backend's
    /// hops-plus-one candidate generation).  dst and src must not overlap.
    void (*copy_bump_second_u32)(std::byte* dst, const std::byte* src,
                                 std::size_t count);

    /// Smallest j in [begin, width) with a[j] != b[j], or width when the
    /// ranges agree (the dense DP's trip-emission scan: most cells are
    /// unchanged after a relaxation, so the vector paths skip runs of equal
    /// cells a whole register at a time).  Precondition: begin <= width.
    std::size_t (*next_mismatch)(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t begin, std::size_t width);
};

/// The table for the active ISA.  Resolved (environment override applied)
/// on first call; cheap afterwards.
const Ops& ops();

/// Scalar reference implementations, exposed so tests can compare any other
/// path against them directly.
extern const Ops kScalarOps;

}  // namespace simd

}  // namespace natscale
