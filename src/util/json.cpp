#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace natscale {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (unsigned char ch : text) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (ch < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += static_cast<char>(ch);
                }
        }
    }
    return out;
}

JsonWriter::JsonWriter() = default;

void JsonWriter::comma() {
    if (!has_items_.empty()) {
        if (has_items_.back()) out_ << ',';
        has_items_.back() = true;
    }
}

void JsonWriter::key_prefix(const std::string& key) {
    NATSCALE_EXPECTS(!stack_.empty() && stack_.back() == Scope::object);
    comma();
    out_ << '"' << json_escape(key) << "\":";
}

void JsonWriter::raw(const std::string& text) { out_ << text; }

JsonWriter& JsonWriter::begin_object() {
    NATSCALE_EXPECTS(stack_.empty() || stack_.back() == Scope::array);
    comma();
    out_ << '{';
    stack_.push_back(Scope::object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
    key_prefix(key);
    out_ << '{';
    stack_.push_back(Scope::object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    NATSCALE_EXPECTS(!stack_.empty() && stack_.back() == Scope::object);
    out_ << '}';
    stack_.pop_back();
    has_items_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
    key_prefix(key);
    out_ << '[';
    stack_.push_back(Scope::array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    NATSCALE_EXPECTS(!stack_.empty() && stack_.back() == Scope::array);
    out_ << ']';
    stack_.pop_back();
    has_items_.pop_back();
    return *this;
}

namespace {
std::string number_to_json(double value) {
    if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}
}  // namespace

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
    key_prefix(key);
    out_ << '"' << json_escape(value) << '"';
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const char* value) {
    return field(key, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
    key_prefix(key);
    out_ << number_to_json(value);
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::int64_t value) {
    key_prefix(key);
    out_ << value;
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::uint64_t value) {
    key_prefix(key);
    out_ << value;
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, bool value) {
    key_prefix(key);
    out_ << (value ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    NATSCALE_EXPECTS(!stack_.empty() && stack_.back() == Scope::array);
    comma();
    out_ << number_to_json(v);
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    NATSCALE_EXPECTS(!stack_.empty() && stack_.back() == Scope::array);
    comma();
    out_ << v;
    return *this;
}

std::string JsonWriter::str() const {
    NATSCALE_EXPECTS(stack_.empty());
    return out_.str();
}

}  // namespace natscale
