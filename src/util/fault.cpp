#include "util/fault.hpp"

#include <cstdlib>

namespace natscale {

namespace {

bool parse_u64(const std::string& text, std::uint64_t& out) {
    if (text.empty()) return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (~std::uint64_t{0} - digit) / 10) return false;
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

bool parse_kind(const std::string& name, FaultKind& out) {
    if (name == "crash_before_reply") out = FaultKind::crash_before_reply;
    else if (name == "crash_mid_frame") out = FaultKind::crash_mid_frame;
    else if (name == "delay") out = FaultKind::delay;
    else if (name == "corrupt_partial") out = FaultKind::corrupt_partial;
    else if (name == "stall") out = FaultKind::stall;
    else if (name == "duplicate_reply") out = FaultKind::duplicate_reply;
    else if (name == "torn_write") out = FaultKind::torn_write;
    else return false;
    return true;
}

}  // namespace

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::none: return "none";
        case FaultKind::crash_before_reply: return "crash_before_reply";
        case FaultKind::crash_mid_frame: return "crash_mid_frame";
        case FaultKind::delay: return "delay";
        case FaultKind::corrupt_partial: return "corrupt_partial";
        case FaultKind::stall: return "stall";
        case FaultKind::duplicate_reply: return "duplicate_reply";
        case FaultKind::torn_write: return "torn_write";
    }
    return "none";
}

FaultSpec fault_spec_from_env() {
    FaultSpec spec;
    const char* env = std::getenv("NATSCALE_FAULT");
    if (env == nullptr || *env == '\0') return spec;
    const std::string text(env);

    std::size_t at = text.find(':');
    if (!parse_kind(text.substr(0, at), spec.kind)) return FaultSpec{};
    while (at != std::string::npos) {
        const std::size_t next = text.find(':', at + 1);
        const std::string part = text.substr(
            at + 1, next == std::string::npos ? std::string::npos : next - at - 1);
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos) return FaultSpec{};
        const std::string key = part.substr(0, eq);
        std::uint64_t value = 0;
        if (!parse_u64(part.substr(eq + 1), value)) return FaultSpec{};
        if (key == "nth") spec.nth = value;
        else if (key == "ms") spec.ms = value;
        else if (key == "spawns") spec.spawns = value;
        else return FaultSpec{};
        at = next;
    }
    if (spec.nth == 0) return FaultSpec{};  // ordinals are 1-based
    return spec;
}

std::uint64_t fault_spawn_index_from_env() {
    const char* env = std::getenv("NATSCALE_DIST_SPAWN");
    std::uint64_t value = 0;
    if (env != nullptr && parse_u64(env, value)) return value;
    return 0;
}

FaultSpec current_fault_spec() { return fault_spec_from_env(); }

bool fault_fires(FaultKind kind, std::uint64_t ordinal) {
    const FaultSpec spec = fault_spec_from_env();
    if (spec.kind != kind) return false;
    if (ordinal != spec.nth) return false;
    return fault_spawn_index_from_env() < spec.spawns;
}

}  // namespace natscale
