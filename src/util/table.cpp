#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/contracts.hpp"

namespace natscale {

ConsoleTable::ConsoleTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    NATSCALE_EXPECTS(!headers_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
    NATSCALE_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };
    print_row(headers_);
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) print_row(row);
}

namespace {
void write_csv_field(std::ostream& os, const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) {
        os << field;
        return;
    }
    os << '"';
    for (char ch : field) {
        if (ch == '"') os << '"';
        os << ch;
    }
    os << '"';
}
}  // namespace

void ConsoleTable::write_csv(std::ostream& os) const {
    auto write_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) os << ',';
            write_csv_field(os, row[c]);
        }
        os << '\n';
    };
    write_row(headers_);
    for (const auto& row : rows_) write_row(row);
}

}  // namespace natscale
