// Human-readable formatting of durations and quantities for the benchmark
// harness output, which mirrors the axes of the paper's figures (aggregation
// periods are reported in hours there).
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace natscale {

/// "2d 6h", "18.0h", "12.5min", "42s" — chooses the largest natural unit.
std::string format_duration(double seconds);

/// Seconds expressed in hours (the unit of the paper's x-axes).
double seconds_to_hours(double seconds) noexcept;

/// Fixed-precision decimal, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Thousands-separated integer, e.g. 82894 -> "82,894".
std::string format_count(std::uint64_t value);

}  // namespace natscale
