// Blocking client for the natscaled wire protocol (service/protocol.hpp).
//
// A thin, synchronous wrapper used by the natscale_client CLI, the
// fault-injection tests and the CI daemon-smoke job: every method sends
// one request frame and blocks for its reply.  Error frames surface as
// remote_error carrying the server's ErrorCode, so callers (and tests)
// can distinguish a stale resume token from a sequence gap from a
// malformed request.
//
// The raw frame primitives (send_frame / send_raw / read_frame) are
// public on purpose: the fault-injection tests use them to write partial
// frames, replay duplicates and forge malformed input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linkstream/event.hpp"
#include "service/protocol.hpp"

namespace natscale::service {

/// An error frame received from the daemon.
class remote_error : public std::runtime_error {
public:
    remote_error(ErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

class Client {
public:
    /// Connects and completes the hello handshake.  Throws
    /// std::runtime_error on connection failure, remote_error when the
    /// server rejects the handshake.
    static Client connect_unix(const std::string& path);
    static Client connect_tcp(const std::string& host, std::uint16_t port);

    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    ~Client();

    // --- typed requests -----------------------------------------------------

    StreamAck register_stream(const RegisterStream& request);

    /// token 0 = read-only attach.
    StreamAck attach(const std::string& name, std::uint64_t resume_token);

    /// Sends one sequenced batch and waits for the ack.
    IngestAck ingest(std::uint64_t stream_id, std::uint64_t first_seq,
                     std::span<const Event> events);

    StreamAck close_stream(std::uint64_t stream_id);
    QueryResult query(const Query& request);
    std::vector<std::string> list_streams();
    void checkpoint();
    void ping();

    /// Fetches the daemon's live metrics registry as a schema-1
    /// metrics_snapshot JSON document.
    std::string stats();

    /// Asks the daemon to persist and exit; returns once acknowledged.
    void shutdown_server();

    // --- raw access (fault-injection tests) ---------------------------------

    void send_frame(MessageType type, std::span<const std::byte> payload);

    /// Writes arbitrary bytes to the socket, bypassing framing — for
    /// partial-frame and fuzz tests.
    void send_raw(std::span<const std::byte> bytes);

    /// Blocks for the next frame.  Throws std::runtime_error on EOF.
    Frame read_frame();

    int fd() const noexcept { return fd_; }

private:
    explicit Client(int fd);
    void handshake();

    /// Blocks for the next frame and converts error frames to remote_error.
    Frame expect(MessageType type);

    int fd_ = -1;
    FrameReader reader_;
};

}  // namespace natscale::service
