#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "linkstream/io.hpp"
#include "natscale/report_schema.hpp"
#include "natscale/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/fd_io.hpp"
#include "util/json.hpp"
#include "util/wire.hpp"

namespace natscale::service {

namespace {

constexpr char kStateMagic[8] = {'N', 'A', 'T', 'S', 'S', 'R', 'V', '1'};
constexpr std::uint32_t kStateVersion = 1;
constexpr std::size_t kMaxStreamName = 128;
constexpr std::size_t kReadChunk = 64 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

const char* request_name(MessageType type) {
    switch (type) {
        case MessageType::hello: return "hello";
        case MessageType::register_stream: return "register_stream";
        case MessageType::attach_stream: return "attach_stream";
        case MessageType::ingest: return "ingest";
        case MessageType::close_stream: return "close_stream";
        case MessageType::query: return "query";
        case MessageType::checkpoint: return "checkpoint";
        case MessageType::list_streams: return "list_streams";
        case MessageType::ping: return "ping";
        case MessageType::shutdown: return "shutdown";
        case MessageType::stats: return "stats";
        default: return "unknown";
    }
}

bool valid_stream_name(const std::string& name) {
    if (name.empty() || name.size() > kMaxStreamName) return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
        if (!ok) return false;
    }
    // Reject names that could escape the state dir or hide as dotfiles.
    return name.front() != '.';
}

/// One client connection.  The IO thread owns fd/reader and all socket
/// calls; workers only append to the outbox under the mutex.
struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}

    int fd;
    FrameReader reader;
    bool said_hello = false;
    bool want_writable = false;  // EPOLLOUT currently armed

    std::mutex mutex;
    std::vector<std::byte> outbox;  // guarded by mutex
    std::size_t sent = 0;           // outbox prefix already written
    bool close_after_flush = false;
    bool closed = false;  // fd is gone; workers must drop replies
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// One hosted stream.  All session/resume state is touched exclusively by
/// strand tasks (at most one worker at a time, in FIFO order), so none of
/// it needs its own lock.
struct StreamState {
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t resume_token = 0;
    std::uint64_t acked_seq = 0;
    std::unique_ptr<StreamSession> session;

    // Strand queue (guarded by Impl::strands_mutex_).
    std::deque<std::function<void()>> tasks;
    bool scheduled = false;
};

using StreamPtr = std::shared_ptr<StreamState>;

}  // namespace

struct Server::Impl {
    explicit Impl(ServerOptions options) : options_(std::move(options)) {
        NATSCALE_EXPECTS(options_.workers >= 1);
        NATSCALE_EXPECTS(!options_.unix_path.empty() || !options_.tcp_host.empty());
        try {
            if (!options_.state_dir.empty()) load_state_dir();
            if (!options_.unix_path.empty()) bind_unix();
            if (!options_.tcp_host.empty()) bind_tcp();
            epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
            if (epoll_fd_ < 0) throw_errno("epoll_create1");
            wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            if (wake_fd_ < 0) throw_errno("eventfd");
            watch(wake_fd_, EPOLLIN);
            if (unix_fd_ >= 0) watch(unix_fd_, EPOLLIN);
            if (tcp_fd_ >= 0) watch(tcp_fd_, EPOLLIN);
        } catch (...) {
            close_fds();
            throw;
        }
    }

    ~Impl() { close_fds(); }

    // --- lifecycle ---------------------------------------------------------

    void run() {
        start_workers();
        std::vector<epoll_event> events(64);
        while (!stop_.load(std::memory_order_acquire)) {
            const int n = epoll_wait(epoll_fd_, events.data(),
                                     static_cast<int>(events.size()), -1);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw_errno("epoll_wait");
            }
            for (int i = 0; i < n; ++i) {
                const int fd = static_cast<int>(events[i].data.fd);
                if (fd == wake_fd_) {
                    drain_wake();
                    flush_pending();
                } else if (fd == unix_fd_ || fd == tcp_fd_) {
                    accept_all(fd);
                } else {
                    handle_socket(fd, events[i].events);
                }
            }
        }
        stop_workers();
        flush_all_best_effort();
        disconnect_all();
        if (!options_.state_dir.empty()) checkpoint_all_direct();
    }

    void stop() {
        stop_.store(true, std::memory_order_release);
        wake();
    }

    std::uint16_t tcp_port() const noexcept { return bound_port_; }

    // --- listeners ---------------------------------------------------------

    void bind_unix() {
        unix_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (unix_fd_ < 0) throw_errno("socket(AF_UNIX)");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
            throw std::runtime_error("unix socket path too long: " + options_.unix_path);
        }
        std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(options_.unix_path.c_str());
        if (bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
            throw_errno("bind(" + options_.unix_path + ")");
        }
        if (listen(unix_fd_, SOMAXCONN) < 0) throw_errno("listen");
    }

    void bind_tcp() {
        tcp_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (tcp_fd_ < 0) throw_errno("socket(AF_INET)");
        const int one = 1;
        setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(options_.tcp_port);
        if (inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
            throw std::runtime_error("bad TCP host (numeric IPv4 expected): " +
                                     options_.tcp_host);
        }
        if (bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
            throw_errno("bind(" + options_.tcp_host + ")");
        }
        if (listen(tcp_fd_, SOMAXCONN) < 0) throw_errno("listen");
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
            throw_errno("getsockname");
        }
        bound_port_ = ntohs(bound.sin_port);
    }

    void watch(int fd, std::uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.fd = fd;
        if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) throw_errno("epoll_ctl");
    }

    void rearm(int fd, std::uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.fd = fd;
        if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) throw_errno("epoll_ctl");
    }

    // --- connections (IO thread) -------------------------------------------

    void accept_all(int listener) {
        for (;;) {
            const int fd = accept4(listener, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) return;
                if (errno == EINTR) continue;
                return;  // transient accept failure; keep serving
            }
            auto conn = std::make_shared<Connection>(fd);
            connections_.emplace(fd, conn);
            watch(fd, EPOLLIN);
        }
    }

    void handle_socket(int fd, std::uint32_t events) {
        const auto at = connections_.find(fd);
        if (at == connections_.end()) return;  // raced with disconnect
        const ConnectionPtr conn = at->second;
        if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
            disconnect(conn);
            return;
        }
        if ((events & EPOLLOUT) != 0) flush(conn);
        if ((events & EPOLLIN) != 0) read_frames(conn);
    }

    void read_frames(const ConnectionPtr& conn) {
        std::byte chunk[kReadChunk];
        for (;;) {
            const ssize_t n = fdio::recv_retry(conn->fd, chunk, sizeof(chunk));
            if (n > 0) {
                try {
                    conn->reader.feed(std::span<const std::byte>(
                        chunk, static_cast<std::size_t>(n)));
                    Frame frame;
                    while (conn->reader.next(frame)) dispatch(conn, frame);
                } catch (const protocol_error& e) {
                    // Unparsable framing or payload: the byte stream can no
                    // longer be trusted — answer and hang up.
                    send_error(conn, e.code(), e.what());
                    hang_up_after_flush(conn);
                    return;
                }
                continue;
            }
            if (n == 0) {
                disconnect(conn);
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            disconnect(conn);
            return;
        }
    }

    void disconnect(const ConnectionPtr& conn) {
        {
            std::lock_guard lock(conn->mutex);
            if (conn->closed) return;
            conn->closed = true;
        }
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
        ::close(conn->fd);
        connections_.erase(conn->fd);
    }

    void disconnect_all() {
        while (!connections_.empty()) disconnect(connections_.begin()->second);
    }

    void hang_up_after_flush(const ConnectionPtr& conn) {
        bool already_flushed = false;
        {
            std::lock_guard lock(conn->mutex);
            conn->close_after_flush = true;
            already_flushed = conn->outbox.size() == conn->sent;
        }
        if (already_flushed) {
            disconnect(conn);
        } else {
            flush(conn);
        }
    }

    // --- outbox ------------------------------------------------------------

    /// Queues one frame on the connection (any thread) and wakes the IO
    /// thread when called off it.
    void send_frame(const ConnectionPtr& conn, MessageType type,
                    std::span<const std::byte> payload) {
        {
            std::lock_guard lock(conn->mutex);
            if (conn->closed) return;
            append_frame(conn->outbox, type, payload);
        }
        if (std::this_thread::get_id() == io_thread_) {
            flush(conn);
        } else {
            wake();
        }
    }

    void send_error(const ConnectionPtr& conn, ErrorCode code,
                    const std::string& message) {
        ErrorMessage error;
        error.code = code;
        error.message = message;
        send_frame(conn, MessageType::error, encode_error(error));
    }

    /// Writes as much of the outbox as the socket takes (IO thread only).
    void flush(const ConnectionPtr& conn) {
        bool close_now = false;
        bool want_writable = false;
        {
            std::lock_guard lock(conn->mutex);
            if (conn->closed) return;
            while (conn->sent < conn->outbox.size()) {
                const ssize_t n =
                    fdio::send_retry(conn->fd, conn->outbox.data() + conn->sent,
                                     conn->outbox.size() - conn->sent);
                if (n >= 0) {
                    conn->sent += static_cast<std::size_t>(n);
                    continue;
                }
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    want_writable = true;
                    break;
                }
                close_now = true;  // broken pipe etc.
                break;
            }
            if (conn->sent == conn->outbox.size()) {
                conn->outbox.clear();
                conn->sent = 0;
                if (conn->close_after_flush) close_now = true;
            }
            // Last-observed pending bytes on this connection: a sustained
            // nonzero value means a reader is not keeping up.
            static obs::Gauge& outbox_depth = obs::gauge("service.outbox_depth_bytes");
            outbox_depth.set(
                static_cast<std::int64_t>(conn->outbox.size() - conn->sent));
            if (want_writable != conn->want_writable && !close_now) {
                conn->want_writable = want_writable;
                rearm(conn->fd, want_writable ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
            }
        }
        if (close_now) disconnect(conn);
    }

    void flush_pending() {
        // Connection counts are small (a handful of ingestors + queriers);
        // scanning them on every wake is simpler and cheaper than a
        // dedicated pending set.
        std::vector<ConnectionPtr> conns;
        conns.reserve(connections_.size());
        for (const auto& [fd, conn] : connections_) conns.push_back(conn);
        for (const ConnectionPtr& conn : conns) {
            bool has_pending = false;
            {
                std::lock_guard lock(conn->mutex);
                has_pending = !conn->closed && conn->sent < conn->outbox.size();
            }
            if (has_pending) flush(conn);
        }
    }

    void flush_all_best_effort() {
        // Exit path: give queued replies (e.g. the shutdown ack) a brief
        // synchronous chance to leave before the fds close.
        for (int round = 0; round < 50; ++round) {
            bool pending = false;
            flush_pending();
            for (const auto& [fd, conn] : connections_) {
                std::lock_guard lock(conn->mutex);
                pending |= !conn->closed && conn->sent < conn->outbox.size();
            }
            if (!pending) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }

    void wake() {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    }

    void drain_wake() {
        std::uint64_t count = 0;
        while (::read(wake_fd_, &count, sizeof(count)) > 0) {
        }
    }

    // --- strands + worker pool ---------------------------------------------

    void start_workers() {
        io_thread_ = std::this_thread::get_id();
        workers_stop_ = false;
        for (std::size_t i = 0; i < options_.workers; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    void stop_workers() {
        {
            std::lock_guard lock(strands_mutex_);
            workers_stop_ = true;
        }
        strands_cv_.notify_all();
        for (std::thread& worker : workers_) worker.join();
        workers_.clear();
    }

    void enqueue(const StreamPtr& stream, std::function<void()> task) {
        // Queue-delay gauge: last observed enqueue-to-start latency, the
        // live signal that the worker pool is saturated.
        static obs::Gauge& queue_delay = obs::gauge("service.strand_queue_delay_ns");
        const std::uint64_t queued_ns = obs::TraceSink::now_ns();
        auto timed = [queued_ns, task = std::move(task)] {
            queue_delay.set(
                static_cast<std::int64_t>(obs::TraceSink::now_ns() - queued_ns));
            task();
        };
        {
            std::lock_guard lock(strands_mutex_);
            stream->tasks.push_back(std::move(timed));
            if (stream->scheduled) return;
            stream->scheduled = true;
            ready_.push_back(stream);
        }
        strands_cv_.notify_one();
    }

    void worker_loop() {
        for (;;) {
            StreamPtr stream;
            {
                std::unique_lock lock(strands_mutex_);
                strands_cv_.wait(lock, [this] { return workers_stop_ || !ready_.empty(); });
                if (workers_stop_) return;
                stream = std::move(ready_.front());
                ready_.pop_front();
            }
            // Drain this stream's queue exclusively (the strand guarantee).
            for (;;) {
                std::function<void()> task;
                {
                    std::lock_guard lock(strands_mutex_);
                    if (stream->tasks.empty() || workers_stop_) {
                        stream->scheduled = false;
                        break;
                    }
                    task = std::move(stream->tasks.front());
                    stream->tasks.pop_front();
                }
                task();
            }
        }
    }

    // --- registry ----------------------------------------------------------

    StreamPtr find_by_id(std::uint64_t id) {
        std::lock_guard lock(streams_mutex_);
        const auto at = streams_by_id_.find(id);
        return at == streams_by_id_.end() ? nullptr : at->second;
    }

    StreamPtr find_by_name(const std::string& name) {
        std::lock_guard lock(streams_mutex_);
        const auto at = streams_by_name_.find(name);
        return at == streams_by_name_.end() ? nullptr : at->second;
    }

    void add_stream(const StreamPtr& stream) {
        std::lock_guard lock(streams_mutex_);
        stream->id = next_stream_id_++;
        streams_by_name_.emplace(stream->name, stream);
        streams_by_id_.emplace(stream->id, stream);
    }

    std::uint64_t mint_token() {
        std::uniform_int_distribution<std::uint64_t> any;
        std::uint64_t token = 0;
        while (token == 0) token = any(token_rng_);  // 0 = read-only attach
        return token;
    }

    // --- dispatch (IO thread) ----------------------------------------------

    void dispatch(const ConnectionPtr& conn, const Frame& frame) {
        if (!conn->said_hello) {
            if (frame.type != MessageType::hello) {
                throw protocol_error(ErrorCode::bad_frame, "expected hello first");
            }
            const Hello hello = parse_hello(frame.payload);
            if (hello.version != kProtocolVersion) {
                throw protocol_error(ErrorCode::bad_frame,
                                     "unsupported protocol version " +
                                         std::to_string(hello.version));
            }
            conn->said_hello = true;
            send_frame(conn, MessageType::hello_ack, encode_hello(Hello{}));
            return;
        }
        static obs::Counter& requests = obs::counter("service.requests");
        requests.add();
        obs::Span span("service.request");
        if (span.active()) {
            span.attr("type", std::string_view(request_name(frame.type)));
            span.attr("fd", static_cast<std::int64_t>(conn->fd));
        }
        switch (frame.type) {
            case MessageType::hello:
                throw protocol_error(ErrorCode::bad_frame, "duplicate hello");
            case MessageType::register_stream:
                handle_register(conn, parse_register_stream(frame.payload));
                return;
            case MessageType::attach_stream:
                handle_attach(conn, parse_attach_stream(frame.payload));
                return;
            case MessageType::ingest:
                handle_ingest(conn, parse_ingest(frame.payload));
                return;
            case MessageType::close_stream:
                handle_close(conn, parse_close_stream(frame.payload));
                return;
            case MessageType::query:
                handle_query(conn, parse_query(frame.payload));
                return;
            case MessageType::checkpoint:
                handle_checkpoint(conn, /*then_stop=*/false);
                return;
            case MessageType::list_streams:
                handle_list(conn);
                return;
            case MessageType::ping:
                send_frame(conn, MessageType::pong, {});
                return;
            case MessageType::shutdown:
                handle_checkpoint(conn, /*then_stop=*/true);
                return;
            case MessageType::stats: {
                StatsResult result;
                result.json = metrics_snapshot_json(obs::metrics_snapshot());
                send_frame(conn, MessageType::stats_result,
                           encode_stats_result(result));
                return;
            }
            default:
                send_error(conn, ErrorCode::unknown_type,
                           "unknown message type " +
                               std::to_string(static_cast<std::uint32_t>(frame.type)));
                return;
        }
    }

    void handle_register(const ConnectionPtr& conn, const RegisterStream& msg) {
        if (!valid_stream_name(msg.name)) {
            send_error(conn, ErrorCode::bad_request,
                       "stream names are [A-Za-z0-9_.-], not dot-led, <= 128 chars");
            return;
        }
        if (msg.num_nodes < 2 || msg.num_nodes > std::numeric_limits<NodeId>::max()) {
            send_error(conn, ErrorCode::bad_request, "num_nodes out of range");
            return;
        }
        if (msg.period_end < 1) {
            send_error(conn, ErrorCode::bad_request,
                       "period_end must be >= 1 (the daemon derives the Delta "
                       "grid from the period of study)");
            return;
        }
        if (msg.grid_points < 1 || msg.grid_points > 512) {
            send_error(conn, ErrorCode::bad_request, "grid_points must be in [1, 512]");
            return;
        }
        if (msg.metric > static_cast<std::uint32_t>(UniformityMetric::cre)) {
            send_error(conn, ErrorCode::bad_request, "unknown uniformity metric");
            return;
        }
        if (msg.histogram_bins > (1u << 20) ||
            msg.shannon_slots < 1 || msg.shannon_slots > (1u << 20)) {
            send_error(conn, ErrorCode::bad_request, "bad histogram resolution");
            return;
        }
        if (msg.reorder_horizon < 0) {
            send_error(conn, ErrorCode::bad_request, "negative reorder horizon");
            return;
        }
        if (find_by_name(msg.name)) {
            send_error(conn, ErrorCode::bad_request,
                       "stream '" + msg.name + "' already exists; attach instead");
            return;
        }

        SessionOptions options;
        options.config.metric = static_cast<UniformityMetric>(msg.metric);
        options.config.coarse_points = msg.grid_points;
        if (msg.histogram_bins != 0) options.config.histogram_bins = msg.histogram_bins;
        options.config.shannon_slots = msg.shannon_slots;
        options.config.num_threads = options_.engine_threads;
        options.ingest.period_end = msg.period_end;
        options.ingest.reorder_horizon = msg.reorder_horizon;
        options.ingest.duplicates =
            msg.drop_duplicates ? DuplicatePolicy::drop : DuplicatePolicy::keep;
        options.ingest.late = msg.reject_late ? LatePolicy::reject : LatePolicy::drop;

        auto stream = std::make_shared<StreamState>();
        stream->name = msg.name;
        stream->resume_token = mint_token();
        try {
            stream->session = std::make_unique<StreamSession>(
                static_cast<NodeId>(msg.num_nodes), msg.directed, std::move(options));
        } catch (const contract_error& e) {
            send_error(conn, ErrorCode::bad_request, e.what());
            return;
        }
        add_stream(stream);
        send_frame(conn, MessageType::stream_ack,
                   encode_stream_ack(ack_of(*stream, /*reveal_token=*/true)));
    }

    void handle_attach(const ConnectionPtr& conn, const AttachStream& msg) {
        const StreamPtr stream = find_by_name(msg.name);
        if (!stream) {
            send_error(conn, ErrorCode::unknown_stream,
                       "no stream named '" + msg.name + "'");
            return;
        }
        // Token 0 = read-only attach (queries only; the real token is not
        // revealed).  A wrong non-zero token is a stale resume attempt.
        if (msg.resume_token != 0 && msg.resume_token != stream->resume_token) {
            send_error(conn, ErrorCode::stale_token,
                       "resume token does not match stream '" + msg.name + "'");
            return;
        }
        const bool reveal = msg.resume_token == stream->resume_token;
        // Resume state (acked_seq, watermark) is strand-owned: answer from
        // the strand so an attach racing in-flight ingest sees a settled
        // value, not a torn one.
        enqueue(stream, [this, conn, stream, reveal] {
            send_frame(conn, MessageType::stream_ack,
                       encode_stream_ack(ack_of(*stream, reveal)));
        });
    }

    StreamAck ack_of(const StreamState& stream, bool reveal_token) {
        StreamAck ack;
        ack.name = stream.name;
        ack.stream_id = stream.id;
        ack.resume_token = reveal_token ? stream.resume_token : 0;
        ack.acked_seq = stream.acked_seq;
        ack.sealed_events = stream.session->sealed_events();
        ack.watermark = stream.session->watermark();
        return ack;
    }

    void handle_ingest(const ConnectionPtr& conn, Ingest msg) {
        const StreamPtr stream = find_by_id(msg.stream_id);
        if (!stream) {
            send_error(conn, ErrorCode::unknown_stream,
                       "no stream with id " + std::to_string(msg.stream_id));
            return;
        }
        enqueue(stream, [this, conn, stream, msg = std::move(msg)] {
            apply_ingest(conn, stream, msg);
        });
    }

    void apply_ingest(const ConnectionPtr& conn, const StreamPtr& stream,
                      const Ingest& msg) {
        obs::Span span("service.ingest");
        if (span.active()) {
            span.attr("stream", std::string_view(stream->name));
            span.attr("events", static_cast<std::uint64_t>(msg.events.size()));
        }
        // Per-stream instrument: interned once per (stream, kind) pair, so
        // the mutex-map lookup happens at batch granularity, not per event.
        obs::Counter& batches =
            obs::counter("service.stream." + stream->name + ".ingest_batches");
        obs::Counter& events =
            obs::counter("service.stream." + stream->name + ".ingest_events");
        batches.add();
        events.add(msg.events.size());
        if (msg.first_seq > stream->acked_seq + 1) {
            send_error(conn, ErrorCode::sequence_gap,
                       "ingest starts at seq " + std::to_string(msg.first_seq) +
                           " but only " + std::to_string(stream->acked_seq) +
                           " are acknowledged");
            return;
        }
        // Skip the prefix already applied (duplicate replay after a lost
        // ack); apply the rest exactly once.
        const std::uint64_t skip =
            stream->acked_seq >= msg.first_seq ? stream->acked_seq - msg.first_seq + 1
                                               : 0;
        try {
            for (std::size_t i = static_cast<std::size_t>(skip); i < msg.events.size();
                 ++i) {
                stream->session->append(msg.events[i]);
                stream->acked_seq = msg.first_seq + i;
            }
        } catch (const contract_error& e) {
            // acked_seq stopped at the last good event: a corrected client
            // can resume from there.
            send_error(conn, ErrorCode::ingest_error, e.what());
            return;
        }
        if (!msg.events.empty()) {
            stream->acked_seq =
                std::max(stream->acked_seq, msg.first_seq + msg.events.size() - 1);
        }
        IngestAck ack;
        ack.stream_id = stream->id;
        ack.acked_seq = stream->acked_seq;
        const IngestorCounters& counters = stream->session->counters();
        ack.accepted = counters.accepted;
        ack.duplicates_dropped = counters.duplicates_dropped;
        ack.late_dropped = counters.late_dropped;
        send_frame(conn, MessageType::ingest_ack, encode_ingest_ack(ack));
    }

    void handle_close(const ConnectionPtr& conn, const CloseStream& msg) {
        const StreamPtr stream = find_by_id(msg.stream_id);
        if (!stream) {
            send_error(conn, ErrorCode::unknown_stream,
                       "no stream with id " + std::to_string(msg.stream_id));
            return;
        }
        enqueue(stream, [this, conn, stream] {
            if (!stream->session->closed()) stream->session->close();
            send_frame(conn, MessageType::stream_ack,
                       encode_stream_ack(ack_of(*stream, /*reveal_token=*/false)));
        });
    }

    void handle_query(const ConnectionPtr& conn, const Query& msg) {
        const StreamPtr stream = find_by_id(msg.stream_id);
        if (!stream) {
            send_error(conn, ErrorCode::unknown_stream,
                       "no stream with id " + std::to_string(msg.stream_id));
            return;
        }
        enqueue(stream, [this, conn, stream, msg] { answer_query(conn, stream, msg); });
    }

    void answer_query(const ConnectionPtr& conn, const StreamPtr& stream,
                      const Query& msg) {
        obs::Span span("service.query");
        if (span.active()) {
            span.attr("stream", std::string_view(stream->name));
            span.attr("kind", static_cast<std::uint64_t>(msg.kind));
        }
        obs::counter("service.stream." + stream->name + ".queries").add();
        StreamSession& session = *stream->session;
        const auto started = std::chrono::steady_clock::now();
        ReportContext context;
        context.stream = stream->name;
        context.watermark = session.watermark();
        context.sealed_only = msg.sealed_only;
        context.finished = session.closed();

        QueryResult result;
        result.stream_id = stream->id;
        result.kind = msg.kind;
        try {
            switch (msg.kind) {
                case QueryKind::saturation:
                case QueryKind::curve: {
                    const OnlineReport report = session.report(msg.sealed_only);
                    context.events = report.events_covered;
                    context.refresh_seconds = seconds_since(started);
                    result.json = msg.kind == QueryKind::saturation
                                      ? online_report_json(report, session.metric(), context)
                                      : curve_json(report, session.metric(), context);
                    break;
                }
                case QueryKind::histogram: {
                    const std::span<const Time> grid = session.grid();
                    if (std::find(grid.begin(), grid.end(), msg.delta) == grid.end()) {
                        send_error(conn, ErrorCode::bad_request,
                                   "delta " + std::to_string(msg.delta) +
                                       " is not a maintained grid period");
                        return;
                    }
                    const Histogram01 histogram =
                        session.histogram_at(msg.delta, msg.sealed_only);
                    const IngestorCounters& counters = session.counters();
                    context.events = counters.accepted - counters.duplicates_dropped -
                                     counters.late_dropped;
                    if (msg.sealed_only) context.events = session.sealed_events();
                    context.refresh_seconds = seconds_since(started);
                    result.json = histogram_json(histogram, msg.delta, context);
                    break;
                }
                case QueryKind::status: {
                    result.json = status_json(*stream, context);
                    break;
                }
            }
        } catch (const std::exception& e) {
            send_error(conn, ErrorCode::internal, e.what());
            return;
        }
        send_frame(conn, MessageType::query_result, encode_query_result(result));
    }

    static double seconds_since(std::chrono::steady_clock::time_point started) {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    }

    std::string status_json(const StreamState& stream, const ReportContext& context) {
        const StreamSession& session = *stream.session;
        const IngestorCounters& counters = session.counters();
        JsonWriter json;
        json.begin_object();
        json.field("schema", kReportSchemaVersion);
        json.field("stream", stream.name);
        json.field("events",
                   counters.accepted - counters.duplicates_dropped - counters.late_dropped);
        json.field("watermark_ticks",
                   context.watermark == kInfiniteTime
                       ? std::int64_t{-1}
                       : static_cast<std::int64_t>(context.watermark));
        json.field("sealed_only", context.sealed_only);
        json.field("finished", context.finished);
        json.field("sealed_events", session.sealed_events());
        json.field("acked_seq", stream.acked_seq);
        json.field("accepted", counters.accepted);
        json.field("reordered", counters.reordered);
        json.field("duplicates_dropped", counters.duplicates_dropped);
        json.field("late_dropped", counters.late_dropped);
        json.field("num_nodes", static_cast<std::uint64_t>(session.num_nodes()));
        json.field("directed", session.directed());
        json.field("grid_size", static_cast<std::uint64_t>(session.grid().size()));
        json.field("metric", metric_name(session.metric()));
        json.end_object();
        return json.str();
    }

    void handle_list(const ConnectionPtr& conn) {
        StreamList list;
        {
            std::lock_guard lock(streams_mutex_);
            list.names.reserve(streams_by_name_.size());
            for (const auto& [name, stream] : streams_by_name_) list.names.push_back(name);
        }
        std::sort(list.names.begin(), list.names.end());
        send_frame(conn, MessageType::stream_list, encode_stream_list(list));
    }

    // --- persistence -------------------------------------------------------

    void handle_checkpoint(const ConnectionPtr& conn, bool then_stop) {
        if (options_.state_dir.empty() && !then_stop) {
            send_error(conn, ErrorCode::bad_request, "no state directory configured");
            return;
        }
        std::vector<StreamPtr> streams;
        {
            std::lock_guard lock(streams_mutex_);
            streams.reserve(streams_by_id_.size());
            for (const auto& [id, stream] : streams_by_id_) streams.push_back(stream);
        }
        // One persist task per strand; the last one to finish acks (and
        // stops, for shutdown).
        auto remaining = std::make_shared<std::atomic<std::size_t>>(streams.size());
        auto finish = [this, conn, then_stop] {
            send_frame(conn, MessageType::checkpoint_ack, {});
            if (then_stop) stop();
        };
        if (streams.empty()) {
            finish();
            return;
        }
        for (const StreamPtr& stream : streams) {
            enqueue(stream, [this, conn, stream, remaining, finish] {
                if (!options_.state_dir.empty()) {
                    try {
                        persist(*stream);
                    } catch (const std::exception& e) {
                        send_error(conn, ErrorCode::internal, e.what());
                    }
                }
                if (remaining->fetch_sub(1) == 1) finish();
            });
        }
    }

    std::filesystem::path state_path(const std::string& name) const {
        return std::filesystem::path(options_.state_dir) / (name + ".natstream");
    }

    /// Strand-exclusive: serializes the session plus resume bookkeeping and
    /// durably replaces the state file (util/atomic_file: temp + fsync +
    /// rename + dirsync), so neither a crash mid-write nor power loss right
    /// after the save can corrupt or lose the previous snapshot.
    void persist(StreamState& stream) {
        wire::Writer out;
        out.raw(kStateMagic, sizeof(kStateMagic));
        out.u32(kStateVersion);
        out.u32(0);  // reserved
        out.u64(stream.resume_token);
        out.u64(stream.acked_seq);
        out.u32(static_cast<std::uint32_t>(stream.name.size()));
        out.raw(stream.name.data(), stream.name.size());
        const std::vector<std::byte> snapshot = stream.session->serialize();
        out.u64(snapshot.size());
        out.raw(snapshot.data(), snapshot.size());
        out.u64(wire::fnv1a64(out.bytes().data(), out.bytes().size()));

        atomic_write_file(state_path(stream.name).string(), out.bytes());
    }

    /// Exit path, after the workers joined (exclusive session access).
    void checkpoint_all_direct() {
        std::lock_guard lock(streams_mutex_);
        for (const auto& [id, stream] : streams_by_id_) {
            try {
                persist(*stream);
            } catch (const std::exception&) {
                // Exit-path persistence is best effort; the periodic
                // checkpoint frames report failures to the client.
            }
        }
    }

    void load_state_dir() {
        std::filesystem::create_directories(options_.state_dir);
        for (const auto& entry :
             std::filesystem::directory_iterator(options_.state_dir)) {
            if (!entry.is_regular_file()) continue;
            if (entry.path().extension() != ".natstream") continue;
            load_state_file(entry.path());
        }
    }

    void load_state_file(const std::filesystem::path& path) {
        std::ifstream is(path, std::ios::binary | std::ios::ate);
        if (!is) throw std::runtime_error("cannot open " + path.string());
        const auto size = static_cast<std::size_t>(is.tellg());
        std::vector<std::byte> bytes(size);
        is.seekg(0);
        is.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
        if (!is) throw std::runtime_error("cannot read " + path.string());

        const std::string context = path.string();
        if (size < 8 + 4 + 4 + 8 + 8 + 4 + 8 + 8) {
            throw io_error(context, "truncated daemon state file");
        }
        const std::uint64_t declared = wire::get_u64(bytes.data() + size - 8);
        if (declared != wire::fnv1a64(bytes.data(), size - 8)) {
            throw io_error(context, "daemon state checksum mismatch");
        }
        std::size_t pos = 0;
        auto take = [&](std::size_t count) {
            if (count > (size - 8) - pos) {
                throw io_error(context, "truncated daemon state file");
            }
            const std::byte* at = bytes.data() + pos;
            pos += count;
            return at;
        };
        if (std::memcmp(take(8), kStateMagic, 8) != 0) {
            throw io_error(context, "not a natscaled state file (bad magic)");
        }
        const std::uint32_t version = wire::get_u32(take(4));
        if (version != kStateVersion) {
            throw io_error(context,
                           "unsupported daemon state version " + std::to_string(version));
        }
        if (wire::get_u32(take(4)) != 0) {
            throw io_error(context, "nonzero reserved daemon state field");
        }
        auto stream = std::make_shared<StreamState>();
        stream->resume_token = wire::get_u64(take(8));
        stream->acked_seq = wire::get_u64(take(8));
        const std::uint32_t name_length = wire::get_u32(take(4));
        if (name_length > kMaxStreamName) {
            throw io_error(context, "daemon state stream name too long");
        }
        stream->name.assign(reinterpret_cast<const char*>(take(name_length)),
                            name_length);
        if (!valid_stream_name(stream->name)) {
            throw io_error(context, "daemon state stream name invalid");
        }
        const std::uint64_t snapshot_bytes = wire::get_u64(take(8));
        const std::byte* snapshot = take(static_cast<std::size_t>(snapshot_bytes));
        if (pos != size - 8) throw io_error(context, "trailing bytes in daemon state");
        stream->session = std::make_unique<StreamSession>(StreamSession::restore(
            std::span<const std::byte>(snapshot,
                                       static_cast<std::size_t>(snapshot_bytes)),
            context));
        stream->session->set_num_threads(options_.engine_threads);
        add_stream(stream);
    }

    void close_fds() {
        if (epoll_fd_ >= 0) ::close(epoll_fd_), epoll_fd_ = -1;
        if (wake_fd_ >= 0) ::close(wake_fd_), wake_fd_ = -1;
        if (unix_fd_ >= 0) {
            ::close(unix_fd_), unix_fd_ = -1;
            ::unlink(options_.unix_path.c_str());
        }
        if (tcp_fd_ >= 0) ::close(tcp_fd_), tcp_fd_ = -1;
    }

    // --- state --------------------------------------------------------------

    ServerOptions options_;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread::id io_thread_{};

    std::unordered_map<int, ConnectionPtr> connections_;  // IO thread only

    std::mutex streams_mutex_;
    std::unordered_map<std::string, StreamPtr> streams_by_name_;
    std::unordered_map<std::uint64_t, StreamPtr> streams_by_id_;
    std::uint64_t next_stream_id_ = 1;
    std::mt19937_64 token_rng_{std::random_device{}()};

    std::mutex strands_mutex_;
    std::condition_variable strands_cv_;
    std::deque<StreamPtr> ready_;
    bool workers_stop_ = false;
    std::vector<std::thread> workers_;
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}
Server::~Server() = default;

std::uint16_t Server::tcp_port() const noexcept { return impl_->tcp_port(); }
void Server::run() { impl_->run(); }
void Server::stop() { impl_->stop(); }

}  // namespace natscale::service
