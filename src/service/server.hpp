// natscaled: the multi-stream time-scale service (tentpole of the service
// layer; protocol in service/protocol.hpp, spec in docs/protocol.md).
//
// One process hosts many named streams, each a natscale::StreamSession
// (ingestor + online sweep engine).  Clients connect over a Unix socket or
// TCP, register or re-attach to streams, push sequenced event batches, and
// query the current saturation scale, Gamma(Delta) curve, occupancy
// histograms, or ingest status — answers are the schema-1 JSON reports of
// natscale/report_schema, bit-identical over the sealed prefix to a cold
// batch sweep of the same events.
//
// --- Threading model --------------------------------------------------------
//
// One IO thread runs the epoll loop: accept, read, frame decode, and all
// socket writes.  It never executes analysis.  Every frame that touches a
// stream (ingest, close, query, checkpoint) becomes a task on the stream's
// STRAND — a FIFO queue drained by a shared worker pool with at most one
// worker per stream at a time.  So:
//   * frames of one stream apply in arrival order (exactness),
//   * a slow query on stream A never delays ingestion into stream B, and
//     never stalls the IO thread (ingestion keeps flowing: frames are
//     parsed, enqueued and acknowledged asynchronously),
//   * no per-stream state needs a lock beyond the strand queues' own.
// Workers append replies to the connection's outbox and wake the IO thread
// through an eventfd; the IO thread flushes (EPOLLOUT when the socket is
// full).
//
// --- Fault containment ------------------------------------------------------
//
// Malformed frames (oversized, truncated, unknown enumerators) answer with
// an error frame and close that connection; semantically invalid requests
// (unknown stream, stale resume token, sequence gap, contract-violating
// events) answer with an error frame and keep the connection — none of
// them can crash or wedge the daemon (tests/test_service_protocol.cpp
// fuzzes this).
//
// --- Persistence ------------------------------------------------------------
//
// With a state directory configured, `checkpoint` frames (and graceful
// shutdown) persist every stream — resume bookkeeping plus the complete
// StreamSession snapshot — to <state_dir>/<name>.natstream, written
// atomically (tmp + rename).  At startup the directory is reloaded, so a
// restarted daemon answers bit-identically to one that never stopped, and
// ingestors resume from the checkpointed acked_seq.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace natscale::service {

struct ServerOptions {
    /// Unix-socket listener path; empty = no Unix listener.  An existing
    /// socket file at the path is replaced.
    std::string unix_path;

    /// TCP listener; empty host = no TCP listener, port 0 = ephemeral
    /// (query the bound port with Server::tcp_port()).
    std::string tcp_host;
    std::uint16_t tcp_port = 0;

    /// Stream persistence directory; empty = no persistence (checkpoint
    /// frames answer bad_request).
    std::string state_dir;

    /// Worker threads draining the stream strands (>= 1).
    std::size_t workers = 2;

    /// Per-engine sync/refresh fan-out (OnlineSweepOptions::num_threads);
    /// 1 = sequential, the safe default under a worker pool.  Results are
    /// bit-identical for every value.
    std::size_t engine_threads = 1;
};

/// The daemon.  Construction binds the listeners and reloads the state
/// directory; run() blocks on the epoll loop until stop(), a shutdown
/// frame, or a fatal listener error.  stop() is thread-safe.
class Server {
public:
    /// Throws std::runtime_error when a listener cannot be bound or the
    /// state directory cannot be read.  Preconditions: at least one
    /// listener configured; workers >= 1.
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Port actually bound by the TCP listener (== options.tcp_port unless
    /// it was 0); 0 when no TCP listener is configured.
    std::uint16_t tcp_port() const noexcept;

    /// Runs the IO loop on the calling thread until stopped.  On graceful
    /// exit (stop() or shutdown frame), checkpoints every stream to the
    /// state directory (when configured) before returning.
    void run();

    /// Requests run() to return; safe from any thread and from before
    /// run() starts.
    void stop();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace natscale::service
