#include "service/protocol.hpp"

#include <cstring>

#include "util/contracts.hpp"
#include "util/wire.hpp"

namespace natscale::service {

namespace {

/// Bounds-checked forward reader over one frame payload.
class Cursor {
public:
    explicit Cursor(std::span<const std::byte> payload) : payload_(payload) {}

    std::uint32_t u32() { return wire::get_u32(take(4)); }
    std::uint64_t u64() { return wire::get_u64(take(8)); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool boolean() {
        const std::uint32_t value = u32();
        if (value > 1) throw protocol_error(ErrorCode::bad_frame, "bad boolean field");
        return value != 0;
    }

    std::string string() {
        const std::uint32_t length = u32();
        if (length > kMaxStringBytes) {
            throw protocol_error(ErrorCode::bad_frame, "string field too long");
        }
        const std::byte* at = take(length);
        return std::string(reinterpret_cast<const char*>(at), length);
    }

    const std::byte* take(std::size_t count) {
        if (count > payload_.size() - pos_) {
            throw protocol_error(ErrorCode::bad_frame, "truncated payload");
        }
        const std::byte* at = payload_.data() + pos_;
        pos_ += count;
        return at;
    }

    /// Remaining payload can hold `count` items of `item_bytes` each —
    /// checked BEFORE any allocation sized from the untrusted count.
    void require_items(std::uint64_t count, std::size_t item_bytes) const {
        if (count > (payload_.size() - pos_) / item_bytes) {
            throw protocol_error(ErrorCode::bad_frame, "truncated payload");
        }
    }

    /// Every parser ends with this: trailing bytes mean a framing bug (or
    /// an attack), not a benign extension — reject them.
    void done() const {
        if (pos_ != payload_.size()) {
            throw protocol_error(ErrorCode::bad_frame, "trailing payload bytes");
        }
    }

private:
    std::span<const std::byte> payload_;
    std::size_t pos_ = 0;
};

void put_string(wire::Writer& out, const std::string& text) {
    NATSCALE_EXPECTS(text.size() <= kMaxStringBytes);
    out.u32(static_cast<std::uint32_t>(text.size()));
    out.raw(text.data(), text.size());
}

void put_bool(wire::Writer& out, bool value) { out.u32(value ? 1u : 0u); }

}  // namespace

void append_frame(std::vector<std::byte>& out, MessageType type,
                  std::span<const std::byte> payload) {
    NATSCALE_EXPECTS(payload.size() <= kMaxFramePayload);
    std::byte header[kFrameHeaderBytes];
    wire::put_u32(header, static_cast<std::uint32_t>(payload.size()));
    wire::put_u32(header + 4, static_cast<std::uint32_t>(type));
    out.insert(out.end(), header, header + kFrameHeaderBytes);
    out.insert(out.end(), payload.begin(), payload.end());
}

void FrameReader::feed(std::span<const std::byte> data) {
    // Compact lazily: only once the consumed prefix dominates the buffer.
    if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameReader::next(Frame& frame) {
    if (buffered() < kFrameHeaderBytes) return false;
    const std::byte* header = buffer_.data() + consumed_;
    const std::uint32_t length = wire::get_u32(header);
    if (length > kMaxFramePayload) {
        throw protocol_error(ErrorCode::bad_frame, "frame payload too large");
    }
    if (buffered() < kFrameHeaderBytes + length) return false;
    frame.type = static_cast<MessageType>(wire::get_u32(header + 4));
    frame.payload.assign(header + kFrameHeaderBytes,
                         header + kFrameHeaderBytes + length);
    consumed_ += kFrameHeaderBytes + length;
    return true;
}

// --- hello ------------------------------------------------------------------

std::vector<std::byte> encode_hello(const Hello& hello) {
    wire::Writer out;
    out.raw(kServiceMagic, sizeof(kServiceMagic));
    out.u32(hello.version);
    return std::move(out.bytes());
}

Hello parse_hello(std::span<const std::byte> payload) {
    Cursor in(payload);
    if (std::memcmp(in.take(sizeof(kServiceMagic)), kServiceMagic,
                    sizeof(kServiceMagic)) != 0) {
        throw protocol_error(ErrorCode::bad_frame, "bad service magic");
    }
    Hello hello;
    hello.version = in.u32();
    in.done();
    return hello;
}

// --- error ------------------------------------------------------------------

std::vector<std::byte> encode_error(const ErrorMessage& error) {
    wire::Writer out;
    out.u32(static_cast<std::uint32_t>(error.code));
    put_string(out, error.message.size() <= kMaxStringBytes
                        ? error.message
                        : error.message.substr(0, kMaxStringBytes));
    return std::move(out.bytes());
}

ErrorMessage parse_error(std::span<const std::byte> payload) {
    Cursor in(payload);
    ErrorMessage error;
    const std::uint32_t code = in.u32();
    if (code < 1 || code > static_cast<std::uint32_t>(ErrorCode::internal)) {
        throw protocol_error(ErrorCode::bad_frame, "bad error code");
    }
    error.code = static_cast<ErrorCode>(code);
    error.message = in.string();
    in.done();
    return error;
}

// --- register_stream --------------------------------------------------------

std::vector<std::byte> encode_register_stream(const RegisterStream& msg) {
    wire::Writer out;
    put_string(out, msg.name);
    out.u64(msg.num_nodes);
    put_bool(out, msg.directed);
    out.i64(msg.period_end);
    out.u32(msg.grid_points);
    out.u32(msg.metric);
    out.u32(msg.histogram_bins);
    out.u32(msg.shannon_slots);
    out.i64(msg.reorder_horizon);
    put_bool(out, msg.drop_duplicates);
    put_bool(out, msg.reject_late);
    return std::move(out.bytes());
}

RegisterStream parse_register_stream(std::span<const std::byte> payload) {
    Cursor in(payload);
    RegisterStream msg;
    msg.name = in.string();
    if (msg.name.empty()) {
        throw protocol_error(ErrorCode::bad_frame, "empty stream name");
    }
    msg.num_nodes = in.u64();
    msg.directed = in.boolean();
    msg.period_end = in.i64();
    msg.grid_points = in.u32();
    msg.metric = in.u32();
    msg.histogram_bins = in.u32();
    msg.shannon_slots = in.u32();
    msg.reorder_horizon = in.i64();
    msg.drop_duplicates = in.boolean();
    msg.reject_late = in.boolean();
    in.done();
    return msg;
}

// --- attach_stream ----------------------------------------------------------

std::vector<std::byte> encode_attach_stream(const AttachStream& msg) {
    wire::Writer out;
    put_string(out, msg.name);
    out.u64(msg.resume_token);
    return std::move(out.bytes());
}

AttachStream parse_attach_stream(std::span<const std::byte> payload) {
    Cursor in(payload);
    AttachStream msg;
    msg.name = in.string();
    msg.resume_token = in.u64();
    in.done();
    return msg;
}

// --- stream_ack -------------------------------------------------------------

std::vector<std::byte> encode_stream_ack(const StreamAck& msg) {
    wire::Writer out;
    put_string(out, msg.name);
    out.u64(msg.stream_id);
    out.u64(msg.resume_token);
    out.u64(msg.acked_seq);
    out.u64(msg.sealed_events);
    out.i64(msg.watermark == kInfiniteTime ? std::int64_t{-1}
                                           : static_cast<std::int64_t>(msg.watermark));
    return std::move(out.bytes());
}

StreamAck parse_stream_ack(std::span<const std::byte> payload) {
    Cursor in(payload);
    StreamAck msg;
    msg.name = in.string();
    msg.stream_id = in.u64();
    msg.resume_token = in.u64();
    msg.acked_seq = in.u64();
    msg.sealed_events = in.u64();
    const std::int64_t watermark = in.i64();
    msg.watermark = watermark == -1 ? kInfiniteTime : static_cast<Time>(watermark);
    in.done();
    return msg;
}

// --- ingest -----------------------------------------------------------------

std::vector<std::byte> encode_ingest(const Ingest& msg) {
    wire::Writer out;
    out.u64(msg.stream_id);
    out.u64(msg.first_seq);
    out.u64(msg.events.size());
    for (const Event& event : msg.events) {
        out.u32(event.u);
        out.u32(event.v);
        out.i64(event.t);
    }
    return std::move(out.bytes());
}

Ingest parse_ingest(std::span<const std::byte> payload) {
    Cursor in(payload);
    Ingest msg;
    msg.stream_id = in.u64();
    msg.first_seq = in.u64();
    if (msg.first_seq == 0) {
        throw protocol_error(ErrorCode::bad_frame, "ingest sequence is 1-based");
    }
    const std::uint64_t count = in.u64();
    in.require_items(count, 16);
    msg.events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        Event event;
        event.u = in.u32();
        event.v = in.u32();
        event.t = in.i64();
        msg.events.push_back(event);
    }
    in.done();
    return msg;
}

// --- ingest_ack -------------------------------------------------------------

std::vector<std::byte> encode_ingest_ack(const IngestAck& msg) {
    wire::Writer out;
    out.u64(msg.stream_id);
    out.u64(msg.acked_seq);
    out.u64(msg.accepted);
    out.u64(msg.duplicates_dropped);
    out.u64(msg.late_dropped);
    return std::move(out.bytes());
}

IngestAck parse_ingest_ack(std::span<const std::byte> payload) {
    Cursor in(payload);
    IngestAck msg;
    msg.stream_id = in.u64();
    msg.acked_seq = in.u64();
    msg.accepted = in.u64();
    msg.duplicates_dropped = in.u64();
    msg.late_dropped = in.u64();
    in.done();
    return msg;
}

// --- close_stream -----------------------------------------------------------

std::vector<std::byte> encode_close_stream(const CloseStream& msg) {
    wire::Writer out;
    out.u64(msg.stream_id);
    return std::move(out.bytes());
}

CloseStream parse_close_stream(std::span<const std::byte> payload) {
    Cursor in(payload);
    CloseStream msg;
    msg.stream_id = in.u64();
    in.done();
    return msg;
}

// --- query ------------------------------------------------------------------

std::vector<std::byte> encode_query(const Query& msg) {
    wire::Writer out;
    out.u64(msg.stream_id);
    out.u32(static_cast<std::uint32_t>(msg.kind));
    put_bool(out, msg.sealed_only);
    out.i64(msg.delta);
    return std::move(out.bytes());
}

Query parse_query(std::span<const std::byte> payload) {
    Cursor in(payload);
    Query msg;
    msg.stream_id = in.u64();
    const std::uint32_t kind = in.u32();
    if (kind < 1 || kind > static_cast<std::uint32_t>(QueryKind::status)) {
        throw protocol_error(ErrorCode::bad_frame, "bad query kind");
    }
    msg.kind = static_cast<QueryKind>(kind);
    msg.sealed_only = in.boolean();
    msg.delta = in.i64();
    in.done();
    return msg;
}

// --- query_result -----------------------------------------------------------

std::vector<std::byte> encode_query_result(const QueryResult& msg) {
    // The JSON body may exceed kMaxStringBytes (a curve over a wide grid),
    // so it is the frame remainder rather than a bounded string field.
    wire::Writer out;
    out.u64(msg.stream_id);
    out.u32(static_cast<std::uint32_t>(msg.kind));
    out.raw(msg.json.data(), msg.json.size());
    return std::move(out.bytes());
}

QueryResult parse_query_result(std::span<const std::byte> payload) {
    Cursor in(payload);
    QueryResult msg;
    msg.stream_id = in.u64();
    const std::uint32_t kind = in.u32();
    if (kind < 1 || kind > static_cast<std::uint32_t>(QueryKind::status)) {
        throw protocol_error(ErrorCode::bad_frame, "bad query kind");
    }
    msg.kind = static_cast<QueryKind>(kind);
    const std::size_t remaining = payload.size() - (8 + 4);
    const std::byte* body = in.take(remaining);
    msg.json = std::string(reinterpret_cast<const char*>(body), remaining);
    in.done();
    return msg;
}

// --- stream_list ------------------------------------------------------------

std::vector<std::byte> encode_stream_list(const StreamList& msg) {
    wire::Writer out;
    out.u64(msg.names.size());
    for (const std::string& name : msg.names) put_string(out, name);
    return std::move(out.bytes());
}

StreamList parse_stream_list(std::span<const std::byte> payload) {
    Cursor in(payload);
    StreamList msg;
    const std::uint64_t count = in.u64();
    in.require_items(count, 4);  // every name costs at least its length field
    msg.names.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) msg.names.push_back(in.string());
    in.done();
    return msg;
}

// --- stats_result -----------------------------------------------------------

std::vector<std::byte> encode_stats_result(const StatsResult& msg) {
    // Like query_result, the JSON body is the frame remainder: a registry
    // with many instruments can exceed kMaxStringBytes.
    wire::Writer out;
    out.raw(msg.json.data(), msg.json.size());
    return std::move(out.bytes());
}

StatsResult parse_stats_result(std::span<const std::byte> payload) {
    Cursor in(payload);
    StatsResult msg;
    const std::byte* body = in.take(payload.size());
    msg.json = std::string(reinterpret_cast<const char*>(body), payload.size());
    in.done();
    return msg;
}

}  // namespace natscale::service
