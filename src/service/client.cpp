#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/fd_io.hpp"

namespace natscale::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        throw_errno("connect(" + path + ")");
    }
    Client client(fd);
    client.handshake();
    return client;
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad TCP host (numeric IPv4 expected): " + host);
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
    }
    Client client(fd);
    client.handshake();
    return client;
}

Client::Client(int fd) : fd_(fd) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        reader_ = std::move(other.reader_);
    }
    return *this;
}

Client::~Client() {
    if (fd_ >= 0) ::close(fd_);
}

void Client::handshake() {
    send_frame(MessageType::hello, encode_hello(Hello{}));
    const Frame ack = expect(MessageType::hello_ack);
    const Hello hello = parse_hello(ack.payload);
    if (hello.version != kProtocolVersion) {
        throw std::runtime_error("server speaks protocol version " +
                                 std::to_string(hello.version));
    }
}

void Client::send_frame(MessageType type, std::span<const std::byte> payload) {
    std::vector<std::byte> bytes;
    bytes.reserve(kFrameHeaderBytes + payload.size());
    append_frame(bytes, type, payload);
    send_raw(bytes);
}

void Client::send_raw(std::span<const std::byte> bytes) {
    if (!fdio::send_all(fd_, bytes.data(), bytes.size())) throw_errno("send");
}

Frame Client::read_frame() {
    Frame frame;
    while (!reader_.next(frame)) {
        std::byte chunk[16 * 1024];
        const ssize_t n = fdio::recv_retry(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            reader_.feed(std::span<const std::byte>(chunk, static_cast<std::size_t>(n)));
            continue;
        }
        if (n == 0) throw std::runtime_error("server closed the connection");
        throw_errno("recv");
    }
    return frame;
}

Frame Client::expect(MessageType type) {
    const Frame frame = read_frame();
    if (frame.type == MessageType::error) {
        const ErrorMessage error = parse_error(frame.payload);
        throw remote_error(error.code, error.message);
    }
    if (frame.type != type) {
        throw std::runtime_error(
            "unexpected reply type " +
            std::to_string(static_cast<std::uint32_t>(frame.type)));
    }
    return frame;
}

StreamAck Client::register_stream(const RegisterStream& request) {
    send_frame(MessageType::register_stream, encode_register_stream(request));
    return parse_stream_ack(expect(MessageType::stream_ack).payload);
}

StreamAck Client::attach(const std::string& name, std::uint64_t resume_token) {
    AttachStream request;
    request.name = name;
    request.resume_token = resume_token;
    send_frame(MessageType::attach_stream, encode_attach_stream(request));
    return parse_stream_ack(expect(MessageType::stream_ack).payload);
}

IngestAck Client::ingest(std::uint64_t stream_id, std::uint64_t first_seq,
                         std::span<const Event> events) {
    Ingest request;
    request.stream_id = stream_id;
    request.first_seq = first_seq;
    request.events.assign(events.begin(), events.end());
    send_frame(MessageType::ingest, encode_ingest(request));
    return parse_ingest_ack(expect(MessageType::ingest_ack).payload);
}

StreamAck Client::close_stream(std::uint64_t stream_id) {
    CloseStream request;
    request.stream_id = stream_id;
    send_frame(MessageType::close_stream, encode_close_stream(request));
    return parse_stream_ack(expect(MessageType::stream_ack).payload);
}

QueryResult Client::query(const Query& request) {
    send_frame(MessageType::query, encode_query(request));
    return parse_query_result(expect(MessageType::query_result).payload);
}

std::vector<std::string> Client::list_streams() {
    send_frame(MessageType::list_streams, {});
    return parse_stream_list(expect(MessageType::stream_list).payload).names;
}

void Client::checkpoint() {
    send_frame(MessageType::checkpoint, {});
    expect(MessageType::checkpoint_ack);
}

void Client::ping() {
    send_frame(MessageType::ping, {});
    expect(MessageType::pong);
}

std::string Client::stats() {
    send_frame(MessageType::stats, {});
    return parse_stats_result(expect(MessageType::stats_result).payload).json;
}

void Client::shutdown_server() {
    send_frame(MessageType::shutdown, {});
    expect(MessageType::checkpoint_ack);
}

}  // namespace natscale::service
