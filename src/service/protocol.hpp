// The natscaled wire protocol, version 1 (documented in docs/protocol.md).
//
// A connection is a byte stream (TCP or Unix socket) carrying length-
// prefixed frames; every frame is an 8-byte little-endian header followed
// by a typed payload:
//
//   offset  size  field
//   0       4     payload length (u32 LE), <= kMaxFramePayload
//   4       4     message type (u32 LE, MessageType enumerator)
//   8       ...   payload
//
// The session opens with hello / hello_ack (magic + version negotiation);
// everything after that is request/response with the server free to
// interleave replies to different requests (replies carry the stream id
// they answer about).  Integers are little-endian, strings are a u32
// length followed by raw bytes (no terminator), events are the natbin
// record layout (u u32, v u32, t i64).
//
// Resumable ingestion.  Every ingested event carries an implicit sequence
// number (1-based position in the client's send order); an ingest frame
// says "here are events first_seq .. first_seq+count-1".  The server
// tracks acked_seq per stream — the highest contiguous sequence applied —
// and acks it after every frame.  A client that reconnects re-attaches
// with the stream's resume token, learns acked_seq from the stream_ack,
// and resends from acked_seq + 1.  Frames at or below acked_seq are
// skipped idempotently (duplicate replay after a lost ack is harmless); a
// frame starting beyond acked_seq + 1 is a sequence_gap error.  The resume
// token is minted at registration and survives daemon checkpoint/restart;
// attaching with a wrong token is a stale_token error.
//
// Malformed input (oversized frames, unknown types, truncated payloads,
// out-of-range enumerators) must never crash the server: parsers throw
// protocol_error, which the connection layer answers with an error frame
// and a disconnect (fuzzed in tests/test_service_protocol.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "linkstream/event.hpp"
#include "util/types.hpp"

namespace natscale::service {

inline constexpr char kServiceMagic[8] = {'N', 'A', 'T', 'S', 'V', 'C', '0', '1'};
inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Upper bound on a frame payload: large enough for ~1M events per ingest
/// batch, small enough that a hostile length prefix cannot balloon memory.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;  // 16 MiB

/// Bound on every string field (names, error messages).
inline constexpr std::size_t kMaxStringBytes = 4096;

enum class MessageType : std::uint32_t {
    hello = 1,            // client -> server: magic + version
    hello_ack = 2,        // server -> client: magic + version
    error = 3,            // server -> client: code + message
    register_stream = 4,  // create a stream and its engine
    stream_ack = 5,       // registration/attach reply: id, token, acked_seq
    attach_stream = 6,    // resume an existing stream by name + token
    ingest = 7,           // sequenced event batch
    ingest_ack = 8,       // acked_seq + counter deltas
    close_stream = 9,     // no more events: seal everything
    query = 10,           // saturation / curve / histogram / status
    query_result = 11,    // the versioned JSON report (natscale/report_schema)
    checkpoint = 12,      // persist sessions to the state dir now
    checkpoint_ack = 13,
    list_streams = 14,
    stream_list = 15,
    ping = 16,
    pong = 17,
    shutdown = 18,        // graceful stop (checkpoints first)
    stats = 19,           // client -> server: observability snapshot request
    stats_result = 20,    // server -> client: metrics_snapshot_json
};

enum class ErrorCode : std::uint32_t {
    bad_frame = 1,      // unparsable payload, oversized frame, bad magic
    unknown_type = 2,   // MessageType the server does not know
    unknown_stream = 3, // no stream with that id/name
    stale_token = 4,    // attach token does not match the stream's
    bad_request = 5,    // well-formed but invalid (bad query kind, ...)
    sequence_gap = 6,   // ingest frame skips past acked_seq + 1
    ingest_error = 7,   // event rejected by the stream contract
    internal = 8,       // unexpected server-side failure
};

enum class QueryKind : std::uint32_t {
    saturation = 1,  // current report: gamma + scores (online_report_json)
    curve = 2,       // every grid point (curve_json)
    histogram = 3,   // occupancy histogram of one period (histogram_json)
    status = 4,      // ingest counters, watermark, sealed/total events
};

/// Thrown by parsers on malformed payloads; the connection layer converts
/// it into an error frame.
class protocol_error : public std::runtime_error {
public:
    protocol_error(ErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

struct Frame {
    MessageType type = MessageType::error;
    std::vector<std::byte> payload;
};

/// Appends one framed message to `out` (header + payload).
/// Preconditions: payload.size() <= kMaxFramePayload.
void append_frame(std::vector<std::byte>& out, MessageType type,
                  std::span<const std::byte> payload);

/// Incremental frame decoder over an arbitrary-chunked byte stream: feed()
/// buffered reads, next() pops complete frames.  An oversized length
/// prefix throws protocol_error(bad_frame) immediately — before buffering
/// the body.  Unknown message types are NOT rejected here (the dispatcher
/// answers unknown_type and survives); only the framing itself is policed.
class FrameReader {
public:
    void feed(std::span<const std::byte> data);

    /// Pops the next complete frame into `frame`; false when more bytes
    /// are needed.
    bool next(Frame& frame);

    /// Bytes buffered but not yet returned (for tests / backpressure).
    std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

private:
    std::vector<std::byte> buffer_;
    std::size_t consumed_ = 0;
};

// --- message payloads -------------------------------------------------------

struct Hello {
    std::uint32_t version = kProtocolVersion;
};

struct ErrorMessage {
    ErrorCode code = ErrorCode::internal;
    std::string message;
};

struct RegisterStream {
    std::string name;            // non-empty, <= kMaxStringBytes
    std::uint64_t num_nodes = 0;
    bool directed = false;
    Time period_end = 0;         // exclusive end of the period of study
    std::uint32_t grid_points = 48;  // coarse geometric grid size
    std::uint32_t metric = 0;        // UniformityMetric enumerator
    std::uint32_t histogram_bins = 0;  // 0 = library default
    std::uint32_t shannon_slots = 10;
    Time reorder_horizon = 0;
    bool drop_duplicates = false;
    bool reject_late = false;
};

struct AttachStream {
    std::string name;
    std::uint64_t resume_token = 0;
};

/// Reply to register_stream and attach_stream: everything a (re)connecting
/// ingestor needs to continue exactly where it left off.
struct StreamAck {
    std::string name;
    std::uint64_t stream_id = 0;
    std::uint64_t resume_token = 0;
    std::uint64_t acked_seq = 0;      // resend from acked_seq + 1
    std::uint64_t sealed_events = 0;
    Time watermark = 0;               // -1 encodes kInfiniteTime (closed)
};

struct Ingest {
    std::uint64_t stream_id = 0;
    std::uint64_t first_seq = 0;  // 1-based sequence of events.front()
    std::vector<Event> events;
};

struct IngestAck {
    std::uint64_t stream_id = 0;
    std::uint64_t acked_seq = 0;
    std::uint64_t accepted = 0;            // cumulative ingestor counters
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t late_dropped = 0;
};

struct CloseStream {
    std::uint64_t stream_id = 0;
};

struct Query {
    std::uint64_t stream_id = 0;
    QueryKind kind = QueryKind::saturation;
    bool sealed_only = false;
    Time delta = 0;  // histogram queries: the grid period to report
};

struct QueryResult {
    std::uint64_t stream_id = 0;
    QueryKind kind = QueryKind::saturation;
    std::string json;  // schema-1 report (may exceed kMaxStringBytes)
};

struct StreamList {
    std::vector<std::string> names;
};

/// Reply to a stats request: the daemon's metrics registry serialized as a
/// schema-1 metrics_snapshot report (natscale/report_schema).  The stats
/// request itself carries an empty payload.
struct StatsResult {
    std::string json;  // may exceed kMaxStringBytes (rest of frame)
};

// --- encoders (payload only; wrap with append_frame) ------------------------

std::vector<std::byte> encode_hello(const Hello& hello);
std::vector<std::byte> encode_error(const ErrorMessage& error);
std::vector<std::byte> encode_register_stream(const RegisterStream& msg);
std::vector<std::byte> encode_attach_stream(const AttachStream& msg);
std::vector<std::byte> encode_stream_ack(const StreamAck& msg);
std::vector<std::byte> encode_ingest(const Ingest& msg);
std::vector<std::byte> encode_ingest_ack(const IngestAck& msg);
std::vector<std::byte> encode_close_stream(const CloseStream& msg);
std::vector<std::byte> encode_query(const Query& msg);
std::vector<std::byte> encode_query_result(const QueryResult& msg);
std::vector<std::byte> encode_stream_list(const StreamList& msg);
std::vector<std::byte> encode_stats_result(const StatsResult& msg);

// --- parsers (throw protocol_error(bad_frame) on malformed payloads) --------

Hello parse_hello(std::span<const std::byte> payload);
ErrorMessage parse_error(std::span<const std::byte> payload);
RegisterStream parse_register_stream(std::span<const std::byte> payload);
AttachStream parse_attach_stream(std::span<const std::byte> payload);
StreamAck parse_stream_ack(std::span<const std::byte> payload);
Ingest parse_ingest(std::span<const std::byte> payload);
IngestAck parse_ingest_ack(std::span<const std::byte> payload);
CloseStream parse_close_stream(std::span<const std::byte> payload);
Query parse_query(std::span<const std::byte> payload);
QueryResult parse_query_result(std::span<const std::byte> payload);
StreamList parse_stream_list(std::span<const std::byte> payload);
StatsResult parse_stats_result(std::span<const std::byte> payload);

}  // namespace natscale::service
