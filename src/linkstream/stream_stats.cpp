#include "linkstream/stream_stats.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace natscale {

std::vector<std::size_t> node_event_counts(const LinkStream& stream) {
    std::vector<std::size_t> counts(stream.num_nodes(), 0);
    for (const auto& e : stream.events()) {
        ++counts[e.u];
        ++counts[e.v];
    }
    return counts;
}

std::vector<Time> inter_event_gaps(const LinkStream& stream) {
    // Events are time-sorted; track the previous event time per node.
    std::vector<Time> previous(stream.num_nodes(), -1);
    std::vector<Time> gaps;
    for (const auto& e : stream.events()) {
        for (const NodeId x : {e.u, e.v}) {
            if (previous[x] >= 0) gaps.push_back(e.t - previous[x]);
            previous[x] = e.t;
        }
    }
    return gaps;
}

double burstiness(const LinkStream& stream) {
    const auto gaps = inter_event_gaps(stream);
    if (gaps.size() < 2) return 0.0;
    KahanSum sum;
    for (Time g : gaps) sum.add(static_cast<double>(g));
    const double mu = sum.value() / static_cast<double>(gaps.size());
    KahanSum sq;
    for (Time g : gaps) sq.add((static_cast<double>(g) - mu) * (static_cast<double>(g) - mu));
    const double sigma = std::sqrt(sq.value() / static_cast<double>(gaps.size()));
    if (sigma + mu == 0.0) return 0.0;
    return (sigma - mu) / (sigma + mu);
}

StreamStats compute_stream_stats(const LinkStream& stream, double ticks_per_second) {
    NATSCALE_EXPECTS(ticks_per_second > 0.0);
    StreamStats s;
    s.num_nodes = stream.num_nodes();
    s.num_events = stream.num_events();
    s.period_end = stream.period_end();
    const double seconds = static_cast<double>(s.period_end) * ticks_per_second;
    s.duration_days = seconds / 86400.0;

    const auto counts = node_event_counts(stream);
    KahanSum intercontact;
    for (std::size_t c : counts) {
        if (c > 0) {
            ++s.active_nodes;
            intercontact.add(static_cast<double>(s.period_end) / static_cast<double>(c));
        }
    }
    s.mean_intercontact_ticks =
        s.active_nodes == 0 ? 0.0 : intercontact.value() / static_cast<double>(s.active_nodes);
    s.events_per_node_per_day =
        (s.num_nodes == 0 || s.duration_days == 0.0)
            ? 0.0
            : static_cast<double>(s.num_events) /
                  (static_cast<double>(s.num_nodes) * s.duration_days);
    return s;
}

}  // namespace natscale
