// Activity statistics of a link stream.
//
// Section 5 of the paper relates the saturation scale to the level of
// activity of each network (messages per person per day) and Section 6 to the
// mean inter-contact time of nodes; these are the quantities computed here.
#pragma once

#include <vector>

#include "linkstream/link_stream.hpp"

namespace natscale {

struct StreamStats {
    NodeId num_nodes = 0;
    std::size_t num_events = 0;
    Time period_end = 0;            // T, in ticks
    double duration_days = 0.0;     // T in days given ticks_per_second
    NodeId active_nodes = 0;        // nodes involved in at least one event

    /// Events per node per day, over all nodes (the paper's
    /// "messages sent in average per person per day").
    double events_per_node_per_day = 0.0;

    /// Mean over active nodes of T / (number of events involving the node):
    /// the mean inter-contact time of nodes, in ticks (paper Section 6 uses
    /// T / (N (n-1)) for time-uniform networks, which this generalizes).
    double mean_intercontact_ticks = 0.0;
};

/// Computes the statistics above.  `ticks_per_second` converts the stream's
/// integer ticks to physical seconds (1 for all paper datasets).
StreamStats compute_stream_stats(const LinkStream& stream, double ticks_per_second = 1.0);

/// Number of events each node participates in (both endpoints counted).
std::vector<std::size_t> node_event_counts(const LinkStream& stream);

/// Per-node gaps between consecutive events involving the node, pooled over
/// all nodes, in ticks.  The raw material of inter-contact-time analyses
/// (paper Section 6's x-axis generalized to arbitrary streams).
std::vector<Time> inter_event_gaps(const LinkStream& stream);

/// Burstiness coefficient of the pooled inter-event gaps,
/// B = (sigma - mu) / (sigma + mu) in [-1, 1]:
/// -1 for perfectly periodic gaps, 0 for a Poisson process, -> 1 for
/// extremely bursty activity.  Returns 0 when fewer than 2 gaps exist.
/// Useful for judging how far a stream is from the time-uniform model.
double burstiness(const LinkStream& stream);

}  // namespace natscale
