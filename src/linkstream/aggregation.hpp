// Aggregation of a link stream into a series of graphs (Definition 1).
//
// Window k (1-based) covers timestamps [(k-1)*Delta, k*Delta).  The paper
// requires Delta = T/K for an integer K; in practice (and in the paper's own
// sweeps over many values of Delta) the last window is allowed to be shorter
// when Delta does not divide T, which changes nothing for the method.
#pragma once

#include "linkstream/graph_series.hpp"
#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

/// 1-based index of the window containing timestamp t for period delta.
constexpr WindowIndex window_of(Time t, Time delta) {
    return t / delta + 1;
}

/// K = ceil(T / delta): number of windows covering [0, T).
/// Overflow-safe for period_end near INT64_MAX: (T + delta - 1) would wrap.
constexpr WindowIndex num_windows(Time period_end, Time delta) {
    return period_end / delta + (period_end % delta != 0 ? 1 : 0);
}

/// Aggregates `stream` with period `delta` (in ticks).
///
/// Each snapshot contains the distinct links occurring in its window; the
/// information about the exact times (and hence the order) of links within a
/// window is deliberately lost — that loss is precisely what the occupancy
/// method quantifies.
///
/// The pass is window-sequential (one front-to-back scan of the time-sorted
/// events), so on an mmap-backed source (an open_natbin stream) it releases
/// consumed pages behind itself: peak residency is the per-window working
/// set plus a few MiB of the trace, never the trace itself.  The resulting
/// GraphSeries is bit-identical whichever storage backs the stream.
///
/// Preconditions: delta >= 1.
GraphSeries aggregate(const LinkStream& stream, Time delta);

}  // namespace natscale
