#include "linkstream/interval_stream.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace natscale {

IntervalStream::IntervalStream(std::vector<IntervalEvent> intervals, NodeId num_nodes,
                               Time period_end, bool directed)
    : intervals_(std::move(intervals)), num_nodes_(num_nodes), period_end_(period_end),
      directed_(directed) {
    NATSCALE_EXPECTS(period_end_ > 0);
    if (!directed_) {
        for (auto& iv : intervals_) {
            if (iv.u > iv.v) std::swap(iv.u, iv.v);
        }
    }
    for (const auto& iv : intervals_) {
        NATSCALE_EXPECTS(iv.u < num_nodes_ && iv.v < num_nodes_);
        NATSCALE_EXPECTS(iv.u != iv.v);
        NATSCALE_EXPECTS(iv.begin >= 0 && iv.begin < iv.end && iv.end <= period_end_);
    }
    std::sort(intervals_.begin(), intervals_.end());
}

Time IntervalStream::total_active_time() const noexcept {
    Time total = 0;
    for (const auto& iv : intervals_) total += iv.end - iv.begin;
    return total;
}

bool IntervalStream::active_at(NodeId u, NodeId v, Time t) const {
    NATSCALE_EXPECTS(u < num_nodes_ && v < num_nodes_);
    NodeId a = u;
    NodeId b = v;
    if (!directed_ && a > b) std::swap(a, b);
    for (const auto& iv : intervals_) {
        if (iv.begin > t) break;  // sorted by begin
        if (iv.u == a && iv.v == b && t >= iv.begin && t < iv.end) return true;
    }
    return false;
}

LinkStream oversample(const IntervalStream& stream, const OversampleOptions& options) {
    NATSCALE_EXPECTS(options.sampling_period >= 1);
    NATSCALE_EXPECTS(options.phase >= 0 && options.phase < options.sampling_period);

    std::vector<Event> events;
    for (const auto& iv : stream.intervals()) {
        // First sampling instant >= iv.begin with t = phase (mod period).
        Time t = iv.begin - ((iv.begin - options.phase) % options.sampling_period);
        if (t < iv.begin) t += options.sampling_period;
        for (; t < iv.end; t += options.sampling_period) {
            events.push_back({iv.u, iv.v, t});
        }
    }
    return LinkStream(std::move(events), stream.num_nodes(), stream.period_end(),
                      stream.directed(), /*dedup=*/true);
}

}  // namespace natscale
