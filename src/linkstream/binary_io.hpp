// The .natbin compact binary link-stream format, and its mmap-able loader.
//
// Text loading a 10^8-event trace costs one parse + relabel pass and a
// transient spike of allocator churn every single run; natbin stores the
// already-canonical form of a LinkStream so reopening it is O(1) metadata
// plus (lazily paged) raw records:
//
//   offset  size  field
//   0       8     magic "NATBIN01"
//   8       4     version (u32 LE) = 1
//   12      4     flags (u32 LE): bit 0 directed, bit 1 has label table
//   16      8     num_nodes (u64 LE)
//   24      8     period_end T (i64 LE), > 0
//   32      8     num_events (u64 LE)
//   40      8     events_offset (u64 LE), 16-aligned, >= 64 + label bytes
//   48      8     label_bytes (u64 LE; 0 when bit 1 of flags is clear)
//   56      8     reserved, must be 0
//   64      ...   label table: num_nodes strings, each u32 LE length + bytes
//   ...     ...   zero padding up to events_offset
//   events_offset num_events * 16   event records
//
// One record is 16 bytes little-endian: u (u32), v (u32), t (i64) — exactly
// the in-memory Event layout on little-endian hosts, so the mmap loader
// reinterprets the mapping in place (zero copy).  Records are written in
// the canonical LinkStream order — (t, u, v) ascending, endpoints u < v for
// undirected streams — and the loader verifies that invariant (plus all
// bounds) in one sequential pass that releases pages behind itself, so
// opening a multi-GB trace never holds more than a sliding window resident.
//
// All malformed-input paths (wrong magic, short header, truncated records,
// label table overruns, order violations) throw io_error; nothing is ever
// read out of bounds (fuzzed in tests/test_binary_io.cpp under ASan).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linkstream/io.hpp"
#include "linkstream/link_stream.hpp"

namespace natscale {

inline constexpr char kNatbinMagic[8] = {'N', 'A', 'T', 'B', 'I', 'N', '0', '1'};
inline constexpr std::size_t kNatbinHeaderBytes = 64;
inline constexpr std::size_t kNatbinRecordBytes = 16;

/// Writes `stream` (with an optional label table) as .natbin.
/// Precondition: node_labels empty or >= num_nodes entries.
void save_natbin(const std::string& path, const LinkStream& stream,
                 const std::vector<std::string>& node_labels = {});

/// Maps the file and wraps it as an mmap-backed LinkStream: O(file) bytes of
/// address space, O(sliding window) resident.  One sequential pass validates
/// every record (bounds, canonical endpoints, (t, u, v) order) and counts
/// distinct timestamps; it releases pages behind itself.  On big-endian
/// hosts (where the records cannot be aliased in place) this degrades to
/// load_natbin.  Throws io_error on malformed files, std::runtime_error on
/// unopenable or empty-stream files.
LoadedStream open_natbin(const std::string& path);

/// Reads the whole file into an owned in-memory LinkStream (works on any
/// endianness).  Same validation and errors as open_natbin.
LoadedStream load_natbin(const std::string& path);

/// A tail-mode view of a (possibly still growing) natbin file: the complete
/// records present right now, mmap-backed where possible.  Unlike the strict
/// loaders, tail mode tolerates a writer mid-append — a header event count
/// not yet patched (NatbinWriter writes it on finish()) and a trailing
/// partial record are both expected states of a live file, not corruption.
struct NatbinTail {
    NodeId num_nodes = 0;
    Time period_end = 0;
    bool directed = false;

    /// Complete records in the file, derived from the file size (the header
    /// count is advisory while a writer is active).
    std::uint64_t complete_records = 0;

    /// 0..15 bytes of a trailing partial record (a writer mid-append).
    std::size_t trailing_bytes = 0;

    /// num_events as declared by the header: 0 until the writer's finish()
    /// patches it.
    std::uint64_t header_num_events = 0;

    /// The complete records, in canonical (t, u, v) order.  Valid for the
    /// lifetime of this struct (whose `source` keeps the mapping / decoded
    /// copy alive); a later reopen of the grown file yields a fresh view.
    std::span<const Event> events;

    /// True once the writer has finished the file (header count patched and
    /// matching the bytes on disk): no more records will appear.
    bool finished() const noexcept {
        return header_num_events != 0 && header_num_events == complete_records &&
               trailing_bytes == 0;
    }

    /// Storage behind `events`: the mmap window on little-endian hosts, an
    /// owned decoded copy elsewhere.
    EventSource source;
};

/// Resume cursor for a polling tail reader: the validated record count plus
/// the last validated record itself.  Carrying the record (not only the
/// count) lets the next open detect a file that was truncated and regrown
/// past its previous size between polls — the count alone would silently
/// accept the impostor prefix and splice two unrelated streams together.
struct NatbinTailCursor {
    std::uint64_t validated_records = 0;
    Event last_validated{0, 0, -1};  ///< meaningful only when validated_records > 0
};

/// Opens a natbin file in tail mode.  The header is validated as usual, but
/// the event-count cross-checks are relaxed: the record region is whatever
/// the file size says it is, truncated to whole records.  Records
/// [validated_prefix, complete_records) are validated (bounds, canonical
/// endpoints, (t, u, v) order — including order against the last record of
/// the prefix); pass the complete-record count of the previous open so a
/// polling reader revalidates only what was appended.  Throws io_error on a
/// malformed header or records, and when the file shrank below
/// validated_prefix.
NatbinTail open_natbin_tail(const std::string& path, std::uint64_t validated_prefix = 0);

/// Cursor-checked tail open for polling readers.  Everything the prefix
/// overload does, plus: when the cursor has a validated prefix, the record at
/// its boundary must still equal cursor.last_validated — a mismatch means the
/// file on disk is not a continuation of what was already consumed (truncated
/// and regrown, or replaced wholesale) and raises io_error instead of
/// yielding events from an unrelated stream.  Build the next poll's cursor
/// from the returned tail with tail_cursor().
NatbinTail open_natbin_tail(const std::string& path, const NatbinTailCursor& cursor);

/// The cursor describing everything `tail` has validated: pass it to the
/// cursor overload on the next poll.
NatbinTailCursor tail_cursor(const NatbinTail& tail);

/// Streaming writer for traces too large to materialize as a LinkStream
/// (format conversion pipelines, the out-of-core scale tests).  Events must
/// be appended in canonical order; finish() patches the event count into
/// the header.
class NatbinWriter {
public:
    /// Opens `path` for writing and emits the header + label table.
    /// Preconditions: period_end > 0; node_labels empty or >= num_nodes
    /// entries.
    NatbinWriter(const std::string& path, NodeId num_nodes, Time period_end, bool directed,
                 const std::vector<std::string>& node_labels = {});

    /// Destructor finishes the file if finish() was not called (errors are
    /// swallowed there — call finish() to observe them).
    ~NatbinWriter();
    NatbinWriter(const NatbinWriter&) = delete;
    NatbinWriter& operator=(const NatbinWriter&) = delete;

    /// Appends one event.  Throws io_error when the event is out of bounds,
    /// non-canonical (u >= v on an undirected stream), or out of (t, u, v)
    /// order with respect to the previous append.
    void append(const Event& event);

    /// Pushes every buffered record to the OS so a concurrent tail reader
    /// (open_natbin_tail) observes all events appended so far — the
    /// determinism hook of the `watch` smoke tests.  Does NOT patch the
    /// header count: that is finish()'s signal that the file is complete.
    /// Throws std::runtime_error on write failure.
    void flush();

    std::uint64_t events_written() const noexcept { return count_; }

    /// Flushes buffered records and patches num_events into the header.
    /// Throws std::runtime_error on write failure.  Idempotent.
    void finish();

private:
    void flush_buffer();

    std::string path_;
    std::ofstream os_;
    NodeId num_nodes_ = 0;
    Time period_end_ = 0;
    bool directed_ = false;
    bool finished_ = false;
    std::uint64_t count_ = 0;
    Event prev_{};
    std::vector<Event> buffer_;
};

/// Supported on-disk stream encodings.
enum class StreamFormat { text, natbin };

/// Sniffs the first bytes of `path` for the natbin magic; anything else is
/// text.  Throws std::runtime_error when the file cannot be opened.
StreamFormat detect_stream_format(const std::string& path);

/// Loads either format: natbin through the mmap-backed open_natbin, text
/// through load_link_stream.  `options` applies to text only (a natbin file
/// already fixes directedness, node universe and period).
LoadedStream load_stream_auto(const std::string& path, const LoadOptions& options = {});

}  // namespace natscale
