// The .natbin compact binary link-stream format, and its mmap-able loader.
//
// Text loading a 10^8-event trace costs one parse + relabel pass and a
// transient spike of allocator churn every single run; natbin stores the
// already-canonical form of a LinkStream so reopening it is O(1) metadata
// plus (lazily paged) raw records:
//
//   offset  size  field
//   0       8     magic "NATBIN01"
//   8       4     version (u32 LE) = 1
//   12      4     flags (u32 LE): bit 0 directed, bit 1 has label table
//   16      8     num_nodes (u64 LE)
//   24      8     period_end T (i64 LE), > 0
//   32      8     num_events (u64 LE)
//   40      8     events_offset (u64 LE), 16-aligned, >= 64 + label bytes
//   48      8     label_bytes (u64 LE; 0 when bit 1 of flags is clear)
//   56      8     reserved, must be 0
//   64      ...   label table: num_nodes strings, each u32 LE length + bytes
//   ...     ...   zero padding up to events_offset
//   events_offset num_events * 16   event records
//
// One record is 16 bytes little-endian: u (u32), v (u32), t (i64) — exactly
// the in-memory Event layout on little-endian hosts, so the mmap loader
// reinterprets the mapping in place (zero copy).  Records are written in
// the canonical LinkStream order — (t, u, v) ascending, endpoints u < v for
// undirected streams — and the loader verifies that invariant (plus all
// bounds) in one sequential pass that releases pages behind itself, so
// opening a multi-GB trace never holds more than a sliding window resident.
//
// All malformed-input paths (wrong magic, short header, truncated records,
// label table overruns, order violations) throw io_error; nothing is ever
// read out of bounds (fuzzed in tests/test_binary_io.cpp under ASan).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "linkstream/io.hpp"
#include "linkstream/link_stream.hpp"

namespace natscale {

inline constexpr char kNatbinMagic[8] = {'N', 'A', 'T', 'B', 'I', 'N', '0', '1'};
inline constexpr std::size_t kNatbinHeaderBytes = 64;
inline constexpr std::size_t kNatbinRecordBytes = 16;

/// Writes `stream` (with an optional label table) as .natbin.
/// Precondition: node_labels empty or >= num_nodes entries.
void save_natbin(const std::string& path, const LinkStream& stream,
                 const std::vector<std::string>& node_labels = {});

/// Maps the file and wraps it as an mmap-backed LinkStream: O(file) bytes of
/// address space, O(sliding window) resident.  One sequential pass validates
/// every record (bounds, canonical endpoints, (t, u, v) order) and counts
/// distinct timestamps; it releases pages behind itself.  On big-endian
/// hosts (where the records cannot be aliased in place) this degrades to
/// load_natbin.  Throws io_error on malformed files, std::runtime_error on
/// unopenable or empty-stream files.
LoadedStream open_natbin(const std::string& path);

/// Reads the whole file into an owned in-memory LinkStream (works on any
/// endianness).  Same validation and errors as open_natbin.
LoadedStream load_natbin(const std::string& path);

/// Streaming writer for traces too large to materialize as a LinkStream
/// (format conversion pipelines, the out-of-core scale tests).  Events must
/// be appended in canonical order; finish() patches the event count into
/// the header.
class NatbinWriter {
public:
    /// Opens `path` for writing and emits the header + label table.
    /// Preconditions: period_end > 0; node_labels empty or >= num_nodes
    /// entries.
    NatbinWriter(const std::string& path, NodeId num_nodes, Time period_end, bool directed,
                 const std::vector<std::string>& node_labels = {});

    /// Destructor finishes the file if finish() was not called (errors are
    /// swallowed there — call finish() to observe them).
    ~NatbinWriter();
    NatbinWriter(const NatbinWriter&) = delete;
    NatbinWriter& operator=(const NatbinWriter&) = delete;

    /// Appends one event.  Throws io_error when the event is out of bounds,
    /// non-canonical (u >= v on an undirected stream), or out of (t, u, v)
    /// order with respect to the previous append.
    void append(const Event& event);

    std::uint64_t events_written() const noexcept { return count_; }

    /// Flushes buffered records and patches num_events into the header.
    /// Throws std::runtime_error on write failure.  Idempotent.
    void finish();

private:
    void flush_buffer();

    std::string path_;
    std::ofstream os_;
    NodeId num_nodes_ = 0;
    Time period_end_ = 0;
    bool directed_ = false;
    bool finished_ = false;
    std::uint64_t count_ = 0;
    Event prev_{};
    std::vector<Event> buffer_;
};

/// Supported on-disk stream encodings.
enum class StreamFormat { text, natbin };

/// Sniffs the first bytes of `path` for the natbin magic; anything else is
/// text.  Throws std::runtime_error when the file cannot be opened.
StreamFormat detect_stream_format(const std::string& path);

/// Loads either format: natbin through the mmap-backed open_natbin, text
/// through load_link_stream.  `options` applies to text only (a natbin file
/// already fixes directedness, node universe and period).
LoadedStream load_stream_auto(const std::string& path, const LoadOptions& options = {});

}  // namespace natscale
