#include "linkstream/io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>

#include "util/contracts.hpp"

namespace natscale {

namespace {

/// Splits a line into at most 4 fields on spaces/tabs/commas.
std::size_t split_fields(const std::string& line, std::string_view out[4]) {
    std::size_t count = 0;
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto is_sep = [](char c) { return c == ' ' || c == '\t' || c == ',' || c == '\r'; };
    while (i < n && count < 4) {
        while (i < n && is_sep(line[i])) ++i;
        if (i >= n) break;
        const std::size_t start = i;
        while (i < n && !is_sep(line[i])) ++i;
        out[count++] = std::string_view(line).substr(start, i - start);
    }
    return count;
}

bool parse_time(std::string_view field, double scale, Time& out) {
    // Accept integers and decimal fractions (scaled to ticks).
    double value = 0.0;
    const char* first = field.data();
    const char* last = field.data() + field.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) return false;
    const double scaled = value * scale;
    if (!(scaled >= 0.0) || scaled > 9.0e18) return false;
    out = static_cast<Time>(std::llround(scaled));
    return true;
}

/// Shared line-by-line parsing core: consumes `is` one line at a time, so
/// loading a file never materializes more than one line plus the event list
/// (the pre-streaming loader buffered the whole file into an ostringstream,
/// copied it into a std::string, then copied again into an istringstream —
/// three transient full copies of the dataset before the first event).
LoadedStream parse_events(std::istream& is, const LoadOptions& options,
                          const std::string& origin) {
    std::string line;
    std::size_t line_number = 0;

    std::vector<Event> events;
    std::vector<std::string> labels;
    std::unordered_map<std::string, NodeId> ids;
    auto intern = [&](std::string_view label) {
        auto [it, inserted] = ids.try_emplace(std::string(label), static_cast<NodeId>(labels.size()));
        if (inserted) labels.emplace_back(label);
        return it->second;
    };

    while (std::getline(is, line)) {
        ++line_number;
        std::string_view fields[4];
        const std::size_t nf = split_fields(line, fields);
        if (nf == 0) continue;                                      // blank
        if (fields[0].front() == '#' || fields[0].front() == '%') continue;  // comment
        if (nf < 3) throw io_error(origin, line_number, "expected 'u v t'");
        Time t = 0;
        if (!parse_time(fields[2], options.time_scale, t)) {
            throw io_error(origin, line_number,
                           "bad timestamp '" + std::string(fields[2]) + "'");
        }
        const NodeId u = intern(fields[0]);
        const NodeId v = intern(fields[1]);
        if (u == v) {
            if (options.skip_self_loops) continue;
            throw io_error(origin, line_number, "self-loop on node '" + labels[u] + "'");
        }
        events.push_back({u, v, t});
    }
    if (events.empty()) throw std::runtime_error(origin + ": no events");

    Time max_time = 0;
    for (const auto& e : events) max_time = std::max(max_time, e.t);
    LinkStream stream(std::move(events), static_cast<NodeId>(labels.size()), max_time + 1,
                      options.directed);
    return {std::move(stream), std::move(labels)};
}

}  // namespace

LoadedStream parse_link_stream(const std::string& text, const LoadOptions& options,
                               const std::string& origin) {
    std::istringstream is(text);
    return parse_events(is, options, origin);
}

LoadedStream load_link_stream(const std::string& path, const LoadOptions& options) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("cannot open '" + path + "'");
    return parse_events(file, options, path);
}

void save_link_stream(const std::string& path, const LinkStream& stream,
                      const std::vector<std::string>& node_labels) {
    NATSCALE_EXPECTS(node_labels.empty() || node_labels.size() >= stream.num_nodes());
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open '" + path + "' for writing");
    os << "# natscale link stream: n=" << stream.num_nodes()
       << " events=" << stream.num_events() << " T=" << stream.period_end()
       << (stream.directed() ? " directed" : " undirected") << '\n';
    for (const auto& e : stream.events()) {
        if (node_labels.empty()) {
            os << e.u << ' ' << e.v << ' ' << e.t << '\n';
        } else {
            os << node_labels[e.u] << ' ' << node_labels[e.v] << ' ' << e.t << '\n';
        }
    }
}

}  // namespace natscale
