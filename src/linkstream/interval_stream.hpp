// Interval link streams: dynamic networks whose links LAST over a time
// interval instead of being punctual events — phone calls, physical
// proximity, RFID contacts (paper references [5, 40, 44]).
//
// The paper's occupancy method is defined for punctual links only and names
// the extension to lasting links as its first perspective (Section 9).  This
// module provides the principled bridge the related work [12, 3] studies in
// the opposite direction: an interval stream is *oversampled* into a
// punctual link stream by emitting one event per sampling period while the
// link is active — exactly how sensor deployments measure contact networks
// in the first place.  The occupancy method then applies unchanged to the
// oversampled stream, with the sampling period playing the role of the
// timestamp resolution.
#pragma once

#include <compare>
#include <vector>

#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

/// A lasting link: u and v are continuously connected during [begin, end).
struct IntervalEvent {
    NodeId u = 0;
    NodeId v = 0;
    Time begin = 0;
    Time end = 0;  // exclusive

    friend constexpr std::strong_ordering operator<=>(const IntervalEvent& a,
                                                      const IntervalEvent& b) {
        if (auto c = a.begin <=> b.begin; c != 0) return c;
        if (auto c = a.end <=> b.end; c != 0) return c;
        if (auto c = a.u <=> b.u; c != 0) return c;
        return a.v <=> b.v;
    }
    friend constexpr bool operator==(const IntervalEvent&, const IntervalEvent&) = default;
};

/// A collection of lasting links over [0, T).
class IntervalStream {
public:
    /// Preconditions: endpoints < num_nodes, u != v, 0 <= begin < end <=
    /// period_end for every interval.
    IntervalStream(std::vector<IntervalEvent> intervals, NodeId num_nodes, Time period_end,
                   bool directed = false);

    std::span<const IntervalEvent> intervals() const noexcept { return intervals_; }
    NodeId num_nodes() const noexcept { return num_nodes_; }
    Time period_end() const noexcept { return period_end_; }
    bool directed() const noexcept { return directed_; }
    std::size_t num_intervals() const noexcept { return intervals_.size(); }
    bool empty() const noexcept { return intervals_.empty(); }

    /// Total connected time summed over links, in ticks.
    Time total_active_time() const noexcept;

    /// True if u-v are connected at instant t by any interval.
    bool active_at(NodeId u, NodeId v, Time t) const;

private:
    std::vector<IntervalEvent> intervals_;  // sorted
    NodeId num_nodes_ = 0;
    Time period_end_ = 0;
    bool directed_ = false;
};

struct OversampleOptions {
    /// One punctual event is emitted at every multiple of `sampling_period`
    /// that falls inside an active interval (the sensor's polling clock).
    Time sampling_period = 1;
    /// Phase of the sampling clock in [0, sampling_period).
    Time phase = 0;
};

/// Converts an interval stream to a punctual link stream by periodic
/// sampling.  Duplicate samples from overlapping intervals of the same pair
/// are collapsed.  The result's period_end equals the interval stream's.
LinkStream oversample(const IntervalStream& stream, const OversampleOptions& options);

}  // namespace natscale
