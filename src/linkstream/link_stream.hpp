// LinkStream: a finite collection of (u, v, t) triplets over a period of
// study [0, T), the fundamental object of the paper.
//
// Events are stored sorted by time; the node set is the dense range [0, n).
// Time is measured in integer ticks of size `resolution` (1 second for every
// dataset used in the paper); see util/types.hpp for the continuous-time
// discussion.
//
// Storage lives behind an EventSource (linkstream/event_source.hpp): the
// classic constructors own a std::vector<Event>, while the natbin loader
// (linkstream/binary_io.hpp) wraps a memory-mapped file zero-copy, so every
// algorithm consuming the events() span works out-of-core unchanged.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linkstream/event.hpp"
#include "linkstream/event_source.hpp"
#include "util/types.hpp"

namespace natscale {

class LinkStream {
public:
    /// Builds a stream from an event list.
    ///
    /// Events are sorted; exact duplicates (same u, v, t) are kept — they are
    /// harmless because aggregation deduplicates edges per window — except
    /// when `dedup` is true.  `num_nodes` fixes the node universe (Definition
    /// 1 keeps V constant across snapshots); `period_end` is T, the exclusive
    /// end of the period of study.
    ///
    /// Preconditions: every endpoint < num_nodes, u != v, 0 <= t < period_end.
    LinkStream(std::vector<Event> events, NodeId num_nodes, Time period_end,
               bool directed = false, bool dedup = false);

    /// Convenience factory: infers num_nodes = 1 + max endpoint and
    /// period_end = 1 + max timestamp.  Precondition: events non-empty.
    static LinkStream from_events(std::vector<Event> events, bool directed = false);

    /// Wraps an externally validated source without copying or sorting: the
    /// zero-copy entry point of the mmap-backed natbin loader.  `source`
    /// must hold canonical events — (t, u, v)-sorted, endpoints in
    /// [0, num_nodes), u != v, u < v when undirected, timestamps in
    /// [0, period_end) — and `distinct_timestamps` must be their
    /// distinct-timestamp count; linkstream/binary_io performs exactly this
    /// validation in its sequential open pass.
    static LinkStream from_source(EventSource source, NodeId num_nodes, Time period_end,
                                  bool directed, std::size_t distinct_timestamps);

    /// All events, sorted by (t, u, v).
    std::span<const Event> events() const noexcept { return source_.events(); }

    /// The storage behind events(): in-memory or mmap-backed.  Sequential
    /// consumers use its paging hints to bound residency on mapped traces.
    const EventSource& source() const noexcept { return source_; }

    NodeId num_nodes() const noexcept { return num_nodes_; }
    std::size_t num_events() const noexcept { return source_.size(); }
    bool directed() const noexcept { return directed_; }

    /// T: the exclusive end of the period of study [0, T).
    Time period_end() const noexcept { return period_end_; }

    bool empty() const noexcept { return source_.size() == 0; }

    /// Number of distinct timestamps carrying at least one event.
    std::size_t num_distinct_timestamps() const noexcept { return distinct_timestamps_; }

    /// First / last event time.  Preconditions: !empty().
    Time first_time() const;
    Time last_time() const;

    /// Returns a copy restricted to events with t in [from, to).  The copy
    /// always owns its events, regardless of this stream's storage.
    LinkStream slice(Time from, Time to) const;

private:
    LinkStream() = default;

    EventSource source_;
    NodeId num_nodes_ = 0;
    Time period_end_ = 0;
    bool directed_ = false;
    std::size_t distinct_timestamps_ = 0;
};

}  // namespace natscale
