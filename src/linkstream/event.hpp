// A link-stream event: the triplet (u, v, t) of the paper.
#pragma once

#include <compare>

#include "util/types.hpp"

namespace natscale {

/// One link of a link stream: nodes u and v interact at time t.
/// For undirected streams the pair is unordered (u and v interchangeable);
/// for directed streams the link goes from u to v.
struct Event {
    NodeId u = 0;
    NodeId v = 0;
    Time t = 0;

    /// Orders events chronologically, then by endpoints: the canonical
    /// storage order of a LinkStream.
    friend constexpr std::strong_ordering operator<=>(const Event& a, const Event& b) {
        if (auto c = a.t <=> b.t; c != 0) return c;
        if (auto c = a.u <=> b.u; c != 0) return c;
        return a.v <=> b.v;
    }
    friend constexpr bool operator==(const Event&, const Event&) = default;
};

}  // namespace natscale
