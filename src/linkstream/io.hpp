// Reading and writing link streams as text files.
//
// The accepted format is the de-facto standard of temporal-network datasets
// (KONECT, SNAP): one event per line, `u v t`, separated by spaces, tabs or
// commas, with '#' or '%' comment lines.  Node identifiers may be arbitrary
// non-negative integers or strings; they are relabelled to the dense range
// [0, n) and the mapping is returned so results can be reported in the
// original identifiers.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "linkstream/link_stream.hpp"

namespace natscale {

/// Thrown on malformed input, with the offending path and line number.
class io_error : public std::runtime_error {
public:
    io_error(const std::string& path, std::size_t line, const std::string& what)
        : std::runtime_error(path + ":" + std::to_string(line) + ": " + what),
          line_number(line) {}

    /// For formats without meaningful line numbers (the binary natbin
    /// loader, linkstream/binary_io); line_number is 0.
    io_error(const std::string& path, const std::string& what)
        : std::runtime_error(path + ": " + what), line_number(0) {}

    std::size_t line_number;
};

struct LoadOptions {
    bool directed = false;
    /// Multiplies every timestamp before truncation to ticks; use e.g. 1000
    /// to load second-resolution files with millisecond fractions.
    double time_scale = 1.0;
    /// Drop events whose endpoints are equal instead of failing.
    bool skip_self_loops = true;
};

struct LoadedStream {
    LinkStream stream;
    /// Dense id -> original label, indexable by NodeId.
    std::vector<std::string> node_labels;
};

/// Parses the file at `path`, streaming it line by line (peak memory is the
/// event list plus one line, never a full copy of the file).  Throws
/// io_error on syntax errors and std::runtime_error if the file cannot be
/// opened or holds no events.
LoadedStream load_link_stream(const std::string& path, const LoadOptions& options = {});

/// Parses events from a string (same grammar); `origin` names the source in
/// error messages.
LoadedStream parse_link_stream(const std::string& text, const LoadOptions& options = {},
                               const std::string& origin = "<string>");

/// Writes `u v t` lines using the given labels (or dense ids if empty).
void save_link_stream(const std::string& path, const LinkStream& stream,
                      const std::vector<std::string>& node_labels = {});

}  // namespace natscale
