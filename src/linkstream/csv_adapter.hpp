// Real-trace CSV/TSV adapter.
//
// Published temporal-network datasets agree on "one event per line" and on
// nothing else: SNAP and KONECT order columns `u v t`, the sociopatterns
// releases `t i j`, delimiters range over tabs, commas and runs of spaces,
// timestamps come in seconds or milliseconds, and files open with anything
// from '#' comments to a bare header row.  CsvFormat captures exactly those
// degrees of freedom so one loader covers the conventions; the result feeds
// the same LoadedStream pipeline (and the `convert` path to .natbin) as the
// built-in text loader.
//
// Malformed rows throw io_error with the path, 1-based line number and a
// named reason — the CLI surfaces the message verbatim and exits 2.
#pragma once

#include <string>

#include "linkstream/io.hpp"

namespace natscale {

struct CsvFormat {
    /// Column layout: a string over {u, v, t, _} with exactly one 'u', one
    /// 'v' and one 't'; '_' skips a column (e.g. weights).  Rows may carry
    /// extra trailing columns beyond the layout; they are ignored.
    ///   "uvt"  — SNAP / KONECT edge lists        (u v t)
    ///   "tuv"  — sociopatterns contact lists     (t i j)
    ///   "uv_t" — timestamp after a weight column (u v w t)
    std::string columns = "uvt";

    /// Field delimiter; '\0' (the default) splits on any run of spaces,
    /// tabs or commas, matching the lenient built-in loader.  An explicit
    /// delimiter (e.g. ',' or '\t') splits strictly: every separator ends a
    /// field and empty fields are an error.
    char delimiter = '\0';

    /// Multiplies timestamps before truncation to integer ticks: 1e-3 loads
    /// millisecond files at second resolution, 1000 preserves millisecond
    /// fractions of second-resolution files.
    double time_scale = 1.0;

    /// Unconditionally skipped lines at the top (header rows).  Comment
    /// lines ('#' or '%') are skipped everywhere regardless.
    std::size_t skip_header = 0;

    bool directed = false;
    bool skip_self_loops = true;
};

/// Parses `columns` into per-field roles.  Throws io_error (line 0) on a
/// layout that is not a permutation of u, v, t plus optional '_' skips.
void validate_csv_columns(const std::string& columns, const std::string& origin);

/// Loads the file at `path` under `format`, streaming line by line.  Node
/// labels are interned to dense ids in order of first appearance (returned
/// in LoadedStream::node_labels).  Throws io_error on malformed rows and
/// std::runtime_error if the file cannot be opened or holds no events.
LoadedStream load_csv_stream(const std::string& path, const CsvFormat& format = {});

/// Same grammar from a string; `origin` names the source in errors.
LoadedStream parse_csv_stream(const std::string& text, const CsvFormat& format = {},
                              const std::string& origin = "<string>");

}  // namespace natscale
