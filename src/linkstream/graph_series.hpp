// GraphSeries: the series of snapshots G_Delta = (G_k), k = 1..K, obtained by
// aggregating a link stream on disjoint windows of equal length Delta
// (Definition 1 of the paper).
//
// Storage is sparse over windows: only non-empty snapshots are materialized,
// because at fine aggregation periods the overwhelming majority of windows
// holds no edge (e.g. Irvine at Delta = 1 s: ~4.2M windows, <48k non-empty).
// All algorithms in temporal/ iterate over the non-empty snapshots only; the
// empty ones still count for durations and distances, which the distance
// accumulator integrates analytically.
#pragma once

#include <span>
#include <vector>

#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace natscale {

/// One non-empty snapshot: the distinct edges occurring in window `k`
/// (1-based), i.e. with timestamps in [(k-1)*Delta, k*Delta).
struct Snapshot {
    WindowIndex k = 0;
    std::vector<Edge> edges;  // canonical (u < v if undirected), sorted, unique
};

class GraphSeries {
public:
    /// `snapshots` must be sorted by strictly increasing k, each within
    /// [1, num_windows], with non-empty deduplicated canonical edge lists.
    GraphSeries(NodeId num_nodes, WindowIndex num_windows, Time delta, bool directed,
                std::vector<Snapshot> snapshots);

    NodeId num_nodes() const noexcept { return num_nodes_; }

    /// K: total number of windows covering the period of study.
    WindowIndex num_windows() const noexcept { return num_windows_; }

    /// The aggregation period, in ticks.
    Time delta() const noexcept { return delta_; }

    bool directed() const noexcept { return directed_; }

    /// Non-empty snapshots in increasing window order.
    std::span<const Snapshot> snapshots() const noexcept { return snapshots_; }

    std::size_t num_nonempty_windows() const noexcept { return snapshots_.size(); }

    /// M: total number of edges over all snapshots (the M of the paper's
    /// O(nM) complexity statement).
    std::size_t total_edges() const noexcept { return total_edges_; }

    /// Materializes snapshot `k` as a static graph on the full node set;
    /// returns an empty graph for windows with no events.
    StaticGraph graph_at(WindowIndex k) const;

    /// True if the edge u-v (u->v if directed) occurs in window k.
    bool has_edge_at(WindowIndex k, NodeId u, NodeId v) const;

private:
    const Snapshot* find_snapshot(WindowIndex k) const;

    NodeId num_nodes_ = 0;
    WindowIndex num_windows_ = 0;
    Time delta_ = 0;
    bool directed_ = false;
    std::vector<Snapshot> snapshots_;
    std::size_t total_edges_ = 0;
};

}  // namespace natscale
