#include "linkstream/binary_io.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <limits>
#include <memory>
#include <type_traits>

#include "util/contracts.hpp"
#include "util/wire.hpp"

namespace natscale {

namespace {

using wire::get_u32;
using wire::get_u64;
using wire::put_u32;
using wire::put_u64;

// The zero-copy mmap path aliases the on-disk records as Events; these pin
// down the layout it relies on.  A platform where they fail would need
// explicit (de)serialization — the endianness fallback below handles the
// byte order half; the layout half holds on every ABI we target.
static_assert(sizeof(Event) == kNatbinRecordBytes);
static_assert(alignof(Event) == 8);
static_assert(std::is_trivially_copyable_v<Event>);
static_assert(offsetof(Event, u) == 0);
static_assert(offsetof(Event, v) == 4);
static_assert(offsetof(Event, t) == 8);

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

/// Write buffer of the streaming writer: 16k events = 256 KiB per flush.
constexpr std::size_t kWriterBufferEvents = 16 * 1024;

void encode_event(std::byte* out, const Event& e) {
    if constexpr (kLittleEndian) {
        std::memcpy(out, &e, kNatbinRecordBytes);
    } else {
        put_u32(out, e.u);
        put_u32(out + 4, e.v);
        put_u64(out + 8, static_cast<std::uint64_t>(e.t));
    }
}

Event decode_event(const std::byte* in) {
    if constexpr (kLittleEndian) {
        Event e;
        std::memcpy(&e, in, kNatbinRecordBytes);
        return e;
    } else {
        return Event{get_u32(in), get_u32(in + 4),
                     static_cast<Time>(get_u64(in + 8))};
    }
}

struct NatbinHeader {
    bool directed = false;
    bool has_labels = false;
    NodeId num_nodes = 0;
    Time period_end = 0;
    std::uint64_t num_events = 0;
    std::uint64_t events_offset = 0;
    std::uint64_t label_bytes = 0;
};

constexpr std::uint32_t kFlagDirected = 1u << 0;
constexpr std::uint32_t kFlagLabels = 1u << 1;

std::vector<std::byte> encode_header(const NatbinHeader& h) {
    std::vector<std::byte> bytes(kNatbinHeaderBytes);
    std::memcpy(bytes.data(), kNatbinMagic, sizeof(kNatbinMagic));
    put_u32(bytes.data() + 8, 1);
    put_u32(bytes.data() + 12, (h.directed ? kFlagDirected : 0u) |
                                   (h.has_labels ? kFlagLabels : 0u));
    put_u64(bytes.data() + 16, h.num_nodes);
    put_u64(bytes.data() + 24, static_cast<std::uint64_t>(h.period_end));
    put_u64(bytes.data() + 32, h.num_events);
    put_u64(bytes.data() + 40, h.events_offset);
    put_u64(bytes.data() + 48, h.label_bytes);
    put_u64(bytes.data() + 56, 0);
    return bytes;
}

/// Parses and cross-checks the fixed header against the file size.  Every
/// arithmetic step is overflow-checked so a hostile header can never drive
/// an out-of-bounds read.  In tail mode (`tail` true) the event-count
/// cross-checks are skipped: a live file's header count lags the records on
/// disk until the writer's finish(), and a trailing partial record is a
/// writer mid-append — the caller derives the complete-record count from
/// the file size instead.
NatbinHeader parse_header(const std::string& path, const std::byte* data, std::size_t size,
                          bool tail = false) {
    if (size < kNatbinHeaderBytes) {
        throw io_error(path, "truncated natbin header (" + std::to_string(size) +
                                 " bytes, need " + std::to_string(kNatbinHeaderBytes) + ")");
    }
    if (std::memcmp(data, kNatbinMagic, sizeof(kNatbinMagic)) != 0) {
        throw io_error(path, "not a natbin file (bad magic)");
    }
    const std::uint32_t version = get_u32(data + 8);
    if (version != 1) {
        throw io_error(path, "unsupported natbin version " + std::to_string(version));
    }
    const std::uint32_t flags = get_u32(data + 12);
    if ((flags & ~(kFlagDirected | kFlagLabels)) != 0) {
        throw io_error(path, "unknown natbin flags");
    }
    NatbinHeader h;
    h.directed = (flags & kFlagDirected) != 0;
    h.has_labels = (flags & kFlagLabels) != 0;
    const std::uint64_t nodes = get_u64(data + 16);
    if (nodes > std::numeric_limits<NodeId>::max()) {
        throw io_error(path, "node count " + std::to_string(nodes) + " exceeds NodeId range");
    }
    h.num_nodes = static_cast<NodeId>(nodes);
    const std::uint64_t period = get_u64(data + 24);
    if (period == 0 || period > std::uint64_t(std::numeric_limits<Time>::max())) {
        throw io_error(path, "bad period_end");
    }
    h.period_end = static_cast<Time>(period);
    h.num_events = get_u64(data + 32);
    h.events_offset = get_u64(data + 40);
    h.label_bytes = get_u64(data + 48);
    if (get_u64(data + 56) != 0) {
        throw io_error(path, "nonzero reserved header field");
    }
    if (h.label_bytes != 0 && !h.has_labels) {
        throw io_error(path, "label bytes without label flag");
    }
    if (h.label_bytes > size - kNatbinHeaderBytes ||
        h.events_offset < kNatbinHeaderBytes + h.label_bytes || h.events_offset > size ||
        h.events_offset % kNatbinRecordBytes != 0) {
        throw io_error(path, "bad natbin section offsets");
    }
    if (!tail) {
        if (h.num_events > (size - h.events_offset) / kNatbinRecordBytes) {
            throw io_error(path, "truncated natbin event records (" +
                                     std::to_string(h.num_events) + " declared, file holds " +
                                     std::to_string((size - h.events_offset) /
                                                    kNatbinRecordBytes) +
                                     ")");
        }
        if (h.events_offset + h.num_events * kNatbinRecordBytes != size) {
            throw io_error(path, "trailing bytes after natbin event records");
        }
    }
    return h;
}

std::vector<std::string> parse_labels(const std::string& path, const NatbinHeader& h,
                                      const std::byte* data) {
    std::vector<std::string> labels;
    if (!h.has_labels) return labels;
    // Cheap consistency gate before any allocation: every label costs at
    // least its 4 length bytes, so a hostile num_nodes can never drive a
    // huge reserve (fuzzed: a 4-billion-node header with a 15-byte table
    // must throw here, not OOM below).
    if (h.label_bytes / 4 < h.num_nodes) {
        throw io_error(path, "truncated natbin label table");
    }
    labels.reserve(h.num_nodes);
    const std::byte* cursor = data + kNatbinHeaderBytes;
    std::uint64_t remaining = h.label_bytes;
    for (NodeId i = 0; i < h.num_nodes; ++i) {
        if (remaining < 4) throw io_error(path, "truncated natbin label table");
        const std::uint32_t len = get_u32(cursor);
        cursor += 4;
        remaining -= 4;
        if (len > remaining) throw io_error(path, "truncated natbin label table");
        labels.emplace_back(reinterpret_cast<const char*>(cursor), len);
        cursor += len;
        remaining -= len;
    }
    if (remaining != 0) throw io_error(path, "trailing bytes in natbin label table");
    return labels;
}

/// The sequential validation pass shared by both loaders: checks bounds,
/// canonical endpoints and (t, u, v) sortedness of every record, releasing
/// consumed pages behind itself (a no-op for in-memory sources).  Returns
/// the distinct-timestamp count.
std::size_t validate_records(const std::string& path, const NatbinHeader& h,
                             const EventSource& source) {
    SequentialScan scan(source);
    const auto events = source.events();
    std::size_t distinct = 0;
    Event prev{0, 0, -1};
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event e = events[i];
        if (e.u >= h.num_nodes || e.v >= h.num_nodes) {
            throw io_error(path, "event " + std::to_string(i) + " endpoint out of range");
        }
        if (e.u == e.v) {
            throw io_error(path, "event " + std::to_string(i) + " is a self-loop");
        }
        if (!h.directed && e.u > e.v) {
            throw io_error(path, "event " + std::to_string(i) +
                                     " breaks the canonical u < v endpoint order");
        }
        if (e.t < 0 || e.t >= h.period_end) {
            throw io_error(path, "event " + std::to_string(i) + " timestamp out of [0, T)");
        }
        if (prev.t >= 0 && e < prev) {
            throw io_error(path, "event " + std::to_string(i) + " breaks (t, u, v) sort order");
        }
        if (e.t != prev.t || prev.t < 0) ++distinct;
        prev = e;
        scan.consumed(i);
    }
    scan.finish();
    return distinct;
}

}  // namespace

void save_natbin(const std::string& path, const LinkStream& stream,
                 const std::vector<std::string>& node_labels) {
    NATSCALE_EXPECTS(node_labels.empty() || node_labels.size() >= stream.num_nodes());
    NatbinWriter writer(path, stream.num_nodes(), stream.period_end(), stream.directed(),
                        node_labels);
    for (const Event& e : stream.events()) writer.append(e);
    writer.finish();
}

NatbinWriter::NatbinWriter(const std::string& path, NodeId num_nodes, Time period_end,
                           bool directed, const std::vector<std::string>& node_labels)
    : path_(path), num_nodes_(num_nodes), period_end_(period_end), directed_(directed),
      prev_{0, 0, -1} {
    NATSCALE_EXPECTS(period_end > 0);
    NATSCALE_EXPECTS(node_labels.empty() || node_labels.size() >= num_nodes);
    os_.open(path, std::ios::binary | std::ios::trunc);
    if (!os_) throw std::runtime_error("cannot open '" + path + "' for writing");

    NatbinHeader h;
    h.directed = directed;
    h.has_labels = !node_labels.empty();
    h.num_nodes = num_nodes;
    h.period_end = period_end;
    h.num_events = 0;  // patched by finish()
    std::vector<std::byte> label_blob;
    if (h.has_labels) {
        for (NodeId i = 0; i < num_nodes; ++i) {
            const std::string& label = node_labels[i];
            std::byte len[4];
            put_u32(len, static_cast<std::uint32_t>(label.size()));
            label_blob.insert(label_blob.end(), len, len + 4);
            const auto* bytes = reinterpret_cast<const std::byte*>(label.data());
            label_blob.insert(label_blob.end(), bytes, bytes + label.size());
        }
    }
    h.label_bytes = label_blob.size();
    const std::uint64_t unpadded = kNatbinHeaderBytes + h.label_bytes;
    h.events_offset = (unpadded + kNatbinRecordBytes - 1) / kNatbinRecordBytes *
                      kNatbinRecordBytes;

    const auto header = encode_header(h);
    os_.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    if (!label_blob.empty()) {
        os_.write(reinterpret_cast<const char*>(label_blob.data()),
                  static_cast<std::streamsize>(label_blob.size()));
    }
    const std::uint64_t padding = h.events_offset - unpadded;
    for (std::uint64_t i = 0; i < padding; ++i) os_.put('\0');
    if (!os_) throw std::runtime_error("cannot write natbin header to '" + path + "'");
    buffer_.reserve(kWriterBufferEvents);
}

NatbinWriter::~NatbinWriter() {
    try {
        finish();
    } catch (...) {  // NOLINT(bugprone-empty-catch) — destructors must not throw
    }
}

void NatbinWriter::append(const Event& event) {
    NATSCALE_EXPECTS(!finished_);
    if (event.u >= num_nodes_ || event.v >= num_nodes_) {
        throw io_error(path_, "appended event endpoint out of range");
    }
    if (event.u == event.v) throw io_error(path_, "appended event is a self-loop");
    if (!directed_ && event.u > event.v) {
        throw io_error(path_, "appended event breaks the canonical u < v endpoint order");
    }
    if (event.t < 0 || event.t >= period_end_) {
        throw io_error(path_, "appended event timestamp out of [0, T)");
    }
    if (prev_.t >= 0 && event < prev_) {
        throw io_error(path_, "appended event breaks (t, u, v) sort order");
    }
    prev_ = event;
    buffer_.push_back(event);
    ++count_;
    if (buffer_.size() >= kWriterBufferEvents) flush_buffer();
}

void NatbinWriter::flush_buffer() {
    if (buffer_.empty()) return;
    if constexpr (kLittleEndian) {
        os_.write(reinterpret_cast<const char*>(buffer_.data()),
                  static_cast<std::streamsize>(buffer_.size() * kNatbinRecordBytes));
    } else {
        std::vector<std::byte> encoded(buffer_.size() * kNatbinRecordBytes);
        for (std::size_t i = 0; i < buffer_.size(); ++i) {
            encode_event(encoded.data() + i * kNatbinRecordBytes, buffer_[i]);
        }
        os_.write(reinterpret_cast<const char*>(encoded.data()),
                  static_cast<std::streamsize>(encoded.size()));
    }
    buffer_.clear();
}

void NatbinWriter::flush() {
    NATSCALE_EXPECTS(!finished_);
    flush_buffer();
    os_.flush();
    if (!os_) throw std::runtime_error("cannot flush natbin file '" + path_ + "'");
}

void NatbinWriter::finish() {
    if (finished_) return;
    finished_ = true;
    flush_buffer();
    // Patch num_events (offset 32) now that it is known.
    std::byte patch[8];
    put_u64(patch, count_);
    os_.seekp(32);
    os_.write(reinterpret_cast<const char*>(patch), sizeof(patch));
    os_.flush();
    if (!os_) throw std::runtime_error("cannot finalize natbin file '" + path_ + "'");
    os_.close();
}

namespace {

LoadedStream load_impl(const std::string& path, bool prefer_mmap) {
    auto file = std::make_shared<const MappedFile>(MappedFile::open(path));
    const NatbinHeader h = parse_header(path, file->data(), file->size());
    std::vector<std::string> labels = parse_labels(path, h, file->data());
    if (h.num_events == 0) throw std::runtime_error(path + ": no events");

    const bool zero_copy = prefer_mmap && kLittleEndian && file->is_mapped();

    EventSource source;
    if (zero_copy) {
        source = EventSource::mapped(file, h.events_offset,
                                     static_cast<std::size_t>(h.num_events));
    } else {
        const std::byte* records = file->data() + h.events_offset;
        file->advise_sequential(h.events_offset, h.num_events * kNatbinRecordBytes);
        std::vector<Event> events(static_cast<std::size_t>(h.num_events));
        for (std::size_t i = 0; i < events.size(); ++i) {
            events[i] = decode_event(records + i * kNatbinRecordBytes);
        }
        source = EventSource::owning(std::move(events));
    }
    const std::size_t distinct = validate_records(path, h, source);
    return {LinkStream::from_source(std::move(source), h.num_nodes, h.period_end, h.directed,
                                    distinct),
            std::move(labels)};
}

}  // namespace

LoadedStream open_natbin(const std::string& path) { return load_impl(path, true); }

LoadedStream load_natbin(const std::string& path) { return load_impl(path, false); }

namespace {

NatbinTail open_natbin_tail_impl(const std::string& path, std::uint64_t validated_prefix,
                                 const Event* expect_boundary) {
    auto file = std::make_shared<const MappedFile>(MappedFile::open(path));
    const NatbinHeader h = parse_header(path, file->data(), file->size(), /*tail=*/true);

    NatbinTail tail;
    tail.num_nodes = h.num_nodes;
    tail.period_end = h.period_end;
    tail.directed = h.directed;
    tail.header_num_events = h.num_events;
    const std::size_t record_bytes = file->size() - h.events_offset;
    tail.complete_records = record_bytes / kNatbinRecordBytes;
    tail.trailing_bytes = record_bytes % kNatbinRecordBytes;
    if (validated_prefix > tail.complete_records) {
        throw io_error(path, "file shrank below the validated prefix (" +
                                 std::to_string(tail.complete_records) + " records, " +
                                 std::to_string(validated_prefix) + " previously seen)");
    }

    if (kLittleEndian && file->is_mapped()) {
        tail.source = EventSource::mapped(file, h.events_offset,
                                          static_cast<std::size_t>(tail.complete_records));
    } else {
        const std::byte* records = file->data() + h.events_offset;
        std::vector<Event> events(static_cast<std::size_t>(tail.complete_records));
        for (std::size_t i = 0; i < events.size(); ++i) {
            events[i] = decode_event(records + i * kNatbinRecordBytes);
        }
        tail.source = EventSource::owning(std::move(events));
    }
    tail.events = tail.source.events();

    // Validate only the records appended since the caller's previous open;
    // the boundary order check chains through the last validated record, so
    // a polling reader pays O(new records) per reopen, not O(file).
    const auto events = tail.events;
    Event prev = validated_prefix > 0 ? events[static_cast<std::size_t>(validated_prefix) - 1]
                                      : Event{0, 0, -1};
    if (expect_boundary != nullptr && validated_prefix > 0 && prev != *expect_boundary) {
        throw io_error(path, "record " + std::to_string(validated_prefix - 1) +
                                 " no longer matches the validated prefix (file truncated "
                                 "and regrown, or replaced by an unrelated stream)");
    }
    SequentialScan scan(tail.source);
    for (std::size_t i = static_cast<std::size_t>(validated_prefix); i < events.size(); ++i) {
        const Event e = events[i];
        if (e.u >= h.num_nodes || e.v >= h.num_nodes) {
            throw io_error(path, "event " + std::to_string(i) + " endpoint out of range");
        }
        if (e.u == e.v) {
            throw io_error(path, "event " + std::to_string(i) + " is a self-loop");
        }
        if (!h.directed && e.u > e.v) {
            throw io_error(path, "event " + std::to_string(i) +
                                     " breaks the canonical u < v endpoint order");
        }
        if (e.t < 0 || e.t >= h.period_end) {
            throw io_error(path, "event " + std::to_string(i) + " timestamp out of [0, T)");
        }
        if (prev.t >= 0 && e < prev) {
            throw io_error(path, "event " + std::to_string(i) + " breaks (t, u, v) sort order");
        }
        prev = e;
        scan.consumed(i);
    }
    return tail;
}

}  // namespace

NatbinTail open_natbin_tail(const std::string& path, std::uint64_t validated_prefix) {
    return open_natbin_tail_impl(path, validated_prefix, nullptr);
}

NatbinTail open_natbin_tail(const std::string& path, const NatbinTailCursor& cursor) {
    return open_natbin_tail_impl(path, cursor.validated_records,
                                 cursor.validated_records > 0 ? &cursor.last_validated
                                                              : nullptr);
}

NatbinTailCursor tail_cursor(const NatbinTail& tail) {
    NatbinTailCursor cursor;
    cursor.validated_records = tail.complete_records;
    if (!tail.events.empty()) cursor.last_validated = tail.events.back();
    return cursor;
}

StreamFormat detect_stream_format(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open '" + path + "'");
    char magic[sizeof(kNatbinMagic)] = {};
    is.read(magic, sizeof(magic));
    if (is.gcount() == sizeof(magic) && std::memcmp(magic, kNatbinMagic, sizeof(magic)) == 0) {
        return StreamFormat::natbin;
    }
    return StreamFormat::text;
}

LoadedStream load_stream_auto(const std::string& path, const LoadOptions& options) {
    return detect_stream_format(path) == StreamFormat::natbin ? open_natbin(path)
                                                              : load_link_stream(path, options);
}

}  // namespace natscale
