#include "linkstream/link_stream.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace natscale {

LinkStream::LinkStream(std::vector<Event> events, NodeId num_nodes, Time period_end,
                       bool directed, bool dedup)
    : num_nodes_(num_nodes), period_end_(period_end), directed_(directed) {
    NATSCALE_EXPECTS(period_end_ > 0);
    if (!directed_) {
        // Canonical endpoint order for undirected links.
        for (auto& e : events) {
            if (e.u > e.v) std::swap(e.u, e.v);
        }
    }
    for (const auto& e : events) {
        NATSCALE_EXPECTS(e.u < num_nodes_ && e.v < num_nodes_);
        NATSCALE_EXPECTS(e.u != e.v);
        NATSCALE_EXPECTS(e.t >= 0 && e.t < period_end_);
    }
    std::sort(events.begin(), events.end());
    if (dedup) {
        events.erase(std::unique(events.begin(), events.end()), events.end());
    }
    distinct_timestamps_ = 0;
    Time prev = -1;
    for (const auto& e : events) {
        if (e.t != prev) {
            ++distinct_timestamps_;
            prev = e.t;
        }
    }
    source_ = EventSource::owning(std::move(events));
}

LinkStream LinkStream::from_events(std::vector<Event> events, bool directed) {
    NATSCALE_EXPECTS(!events.empty());
    NodeId max_node = 0;
    Time max_time = 0;
    for (const auto& e : events) {
        max_node = std::max({max_node, e.u, e.v});
        max_time = std::max(max_time, e.t);
    }
    return LinkStream(std::move(events), max_node + 1, max_time + 1, directed);
}

LinkStream LinkStream::from_source(EventSource source, NodeId num_nodes, Time period_end,
                                   bool directed, std::size_t distinct_timestamps) {
    NATSCALE_EXPECTS(period_end > 0);
    LinkStream stream;
    stream.source_ = std::move(source);
    stream.num_nodes_ = num_nodes;
    stream.period_end_ = period_end;
    stream.directed_ = directed;
    stream.distinct_timestamps_ = distinct_timestamps;
    return stream;
}

Time LinkStream::first_time() const {
    NATSCALE_EXPECTS(!empty());
    return events().front().t;
}

Time LinkStream::last_time() const {
    NATSCALE_EXPECTS(!empty());
    return events().back().t;
}

LinkStream LinkStream::slice(Time from, Time to) const {
    NATSCALE_EXPECTS(from >= 0 && from < to && to <= period_end_);
    std::vector<Event> subset;
    for (const auto& e : events()) {
        if (e.t >= from && e.t < to) {
            subset.push_back({e.u, e.v, e.t - from});
        }
    }
    return LinkStream(std::move(subset), num_nodes_, to - from, directed_);
}

}  // namespace natscale
