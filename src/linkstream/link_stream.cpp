#include "linkstream/link_stream.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace natscale {

LinkStream::LinkStream(std::vector<Event> events, NodeId num_nodes, Time period_end,
                       bool directed, bool dedup)
    : events_(std::move(events)), num_nodes_(num_nodes), period_end_(period_end),
      directed_(directed) {
    NATSCALE_EXPECTS(period_end_ > 0);
    if (!directed_) {
        // Canonical endpoint order for undirected links.
        for (auto& e : events_) {
            if (e.u > e.v) std::swap(e.u, e.v);
        }
    }
    for (const auto& e : events_) {
        NATSCALE_EXPECTS(e.u < num_nodes_ && e.v < num_nodes_);
        NATSCALE_EXPECTS(e.u != e.v);
        NATSCALE_EXPECTS(e.t >= 0 && e.t < period_end_);
    }
    std::sort(events_.begin(), events_.end());
    if (dedup) {
        events_.erase(std::unique(events_.begin(), events_.end()), events_.end());
    }
    distinct_timestamps_ = 0;
    Time prev = -1;
    for (const auto& e : events_) {
        if (e.t != prev) {
            ++distinct_timestamps_;
            prev = e.t;
        }
    }
}

LinkStream LinkStream::from_events(std::vector<Event> events, bool directed) {
    NATSCALE_EXPECTS(!events.empty());
    NodeId max_node = 0;
    Time max_time = 0;
    for (const auto& e : events) {
        max_node = std::max({max_node, e.u, e.v});
        max_time = std::max(max_time, e.t);
    }
    return LinkStream(std::move(events), max_node + 1, max_time + 1, directed);
}

Time LinkStream::first_time() const {
    NATSCALE_EXPECTS(!empty());
    return events_.front().t;
}

Time LinkStream::last_time() const {
    NATSCALE_EXPECTS(!empty());
    return events_.back().t;
}

LinkStream LinkStream::slice(Time from, Time to) const {
    NATSCALE_EXPECTS(from >= 0 && from < to && to <= period_end_);
    std::vector<Event> subset;
    for (const auto& e : events_) {
        if (e.t >= from && e.t < to) {
            subset.push_back({e.u, e.v, e.t - from});
        }
    }
    return LinkStream(std::move(subset), num_nodes_, to - from, directed_);
}

}  // namespace natscale
