#include "linkstream/graph_series.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace natscale {

GraphSeries::GraphSeries(NodeId num_nodes, WindowIndex num_windows, Time delta, bool directed,
                         std::vector<Snapshot> snapshots)
    : num_nodes_(num_nodes), num_windows_(num_windows), delta_(delta), directed_(directed),
      snapshots_(std::move(snapshots)) {
    NATSCALE_EXPECTS(num_windows_ >= 1);
    NATSCALE_EXPECTS(delta_ >= 1);
    WindowIndex prev = 0;
    for (const auto& snap : snapshots_) {
        NATSCALE_EXPECTS(snap.k > prev && snap.k <= num_windows_);
        NATSCALE_EXPECTS(!snap.edges.empty());
        NATSCALE_EXPECTS(std::is_sorted(snap.edges.begin(), snap.edges.end()));
        NATSCALE_EXPECTS(std::adjacent_find(snap.edges.begin(), snap.edges.end()) ==
                         snap.edges.end());
        prev = snap.k;
        total_edges_ += snap.edges.size();
    }
}

const Snapshot* GraphSeries::find_snapshot(WindowIndex k) const {
    const auto it = std::lower_bound(
        snapshots_.begin(), snapshots_.end(), k,
        [](const Snapshot& s, WindowIndex key) { return s.k < key; });
    if (it == snapshots_.end() || it->k != k) return nullptr;
    return &*it;
}

StaticGraph GraphSeries::graph_at(WindowIndex k) const {
    NATSCALE_EXPECTS(k >= 1 && k <= num_windows_);
    const Snapshot* snap = find_snapshot(k);
    if (snap == nullptr) return StaticGraph(num_nodes_, directed_);
    return StaticGraph(num_nodes_, snap->edges, directed_);
}

bool GraphSeries::has_edge_at(WindowIndex k, NodeId u, NodeId v) const {
    NATSCALE_EXPECTS(k >= 1 && k <= num_windows_);
    NATSCALE_EXPECTS(u < num_nodes_ && v < num_nodes_);
    const Snapshot* snap = find_snapshot(k);
    if (snap == nullptr) return false;
    Edge probe{u, v};
    if (!directed_ && probe.first > probe.second) std::swap(probe.first, probe.second);
    return std::binary_search(snap->edges.begin(), snap->edges.end(), probe);
}

}  // namespace natscale
