#include "linkstream/aggregation.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace natscale {

GraphSeries aggregate(const LinkStream& stream, Time delta) {
    NATSCALE_EXPECTS(delta >= 1);
    const WindowIndex K = num_windows(stream.period_end(), delta);

    // One front-to-back pass over the time order — the chunked out-of-core
    // pipeline.  For mmap-backed sources (linkstream/event_source) the scan
    // drops the pages it has consumed every few MiB, so aggregating a
    // multi-GB trace keeps only the per-window working set plus a sliding
    // window of the file resident.  For in-memory sources the hints are
    // no-ops and this is the classic per-window sort+dedup.
    SequentialScan scan(stream.source());

    std::vector<Snapshot> snapshots;
    const auto events = stream.events();
    std::size_t i = 0;
    while (i < events.size()) {
        const WindowIndex k = window_of(events[i].t, delta);
        Snapshot snap;
        snap.k = k;
        // Events are time-sorted, so each window is a contiguous run.
        while (i < events.size() && window_of(events[i].t, delta) == k) {
            snap.edges.emplace_back(events[i].u, events[i].v);
            ++i;
        }
        std::sort(snap.edges.begin(), snap.edges.end());
        snap.edges.erase(std::unique(snap.edges.begin(), snap.edges.end()), snap.edges.end());
        // Drop the pre-dedup capacity: on duplicate-heavy windows the raw
        // event count dwarfs the distinct edge count, and K windows of dead
        // capacity would dominate peak RSS (the out-of-core scale test
        // catches exactly this).
        snap.edges.shrink_to_fit();
        snapshots.push_back(std::move(snap));
        scan.consumed(i);
    }
    scan.finish();
    return GraphSeries(stream.num_nodes(), K, delta, stream.directed(), std::move(snapshots));
}

}  // namespace natscale
