#include "linkstream/aggregation.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace natscale {

GraphSeries aggregate(const LinkStream& stream, Time delta) {
    NATSCALE_EXPECTS(delta >= 1);
    const WindowIndex K = num_windows(stream.period_end(), delta);

    std::vector<Snapshot> snapshots;
    const auto events = stream.events();
    std::size_t i = 0;
    while (i < events.size()) {
        const WindowIndex k = window_of(events[i].t, delta);
        Snapshot snap;
        snap.k = k;
        // Events are time-sorted, so each window is a contiguous run.
        while (i < events.size() && window_of(events[i].t, delta) == k) {
            snap.edges.emplace_back(events[i].u, events[i].v);
            ++i;
        }
        std::sort(snap.edges.begin(), snap.edges.end());
        snap.edges.erase(std::unique(snap.edges.begin(), snap.edges.end()), snap.edges.end());
        snapshots.push_back(std::move(snap));
    }
    return GraphSeries(stream.num_nodes(), K, delta, stream.directed(), std::move(snapshots));
}

}  // namespace natscale
