#include "linkstream/event_source.hpp"

#include "util/contracts.hpp"

namespace natscale {

EventSource EventSource::owning(std::vector<Event> events) {
    EventSource source;
    source.owned_ = std::make_shared<const std::vector<Event>>(std::move(events));
    source.span_ = std::span<const Event>(source.owned_->data(), source.owned_->size());
    return source;
}

EventSource EventSource::mapped(std::shared_ptr<const MappedFile> file, std::size_t byte_offset,
                                std::size_t count) {
    NATSCALE_EXPECTS(file != nullptr);
    NATSCALE_EXPECTS(byte_offset % alignof(Event) == 0);
    NATSCALE_EXPECTS(byte_offset + count * sizeof(Event) <= file->size());
    EventSource source;
    source.file_ = std::move(file);
    source.byte_offset_ = byte_offset;
    // The natbin record layout is exactly the in-memory Event layout on
    // little-endian hosts (static_asserts in linkstream/binary_io.cpp), so
    // the mapping is reinterpreted in place — the canonical mmap idiom.
    source.span_ = std::span<const Event>(
        reinterpret_cast<const Event*>(source.file_->data() + byte_offset), count);
    return source;
}

void EventSource::advise_sequential() const noexcept {
    if (file_ != nullptr) {
        file_->advise_sequential(byte_offset_, span_.size() * sizeof(Event));
    }
}

void EventSource::release_until(std::size_t end_event) const noexcept {
    if (file_ != nullptr && end_event > 0) {
        file_->release(byte_offset_, std::min(end_event, span_.size()) * sizeof(Event));
    }
}

}  // namespace natscale
