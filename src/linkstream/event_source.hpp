// EventSource: where a link stream's event array physically lives.
//
// Every algorithm in the library consumes events through the
// std::span<const Event> a LinkStream exposes; EventSource is the storage
// behind that span.  Two kinds exist:
//
//   * in-memory — an owned std::vector<Event> (the classic path: text
//     loader, generators, slices).  Cheap random access, resident by
//     definition;
//   * mmap-backed — a window into a memory-mapped .natbin file
//     (linkstream/binary_io).  The span points straight into the mapping
//     (zero copy); sequential consumers call release_until() behind their
//     scan so a multi-GB trace never holds more than a sliding window of
//     pages resident.
//
// Copies share storage (shared_ptr), so passing LinkStreams around never
// duplicates a trace.  Consumers that only ever walk events front to back
// (linkstream/aggregation's window pipeline) check memory_resident() and
// emit the paging hints; everyone else just reads the span.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "linkstream/event.hpp"
#include "util/mmap_file.hpp"

namespace natscale {

class EventSource {
public:
    /// Empty source (no events).
    EventSource() = default;

    /// Takes ownership of an in-memory event array.
    static EventSource owning(std::vector<Event> events);

    /// Wraps `count` events starting `byte_offset` bytes into the mapped
    /// file.  Preconditions: the range lies inside the file and
    /// byte_offset is Event-aligned (natbin guarantees 16-byte alignment).
    static EventSource mapped(std::shared_ptr<const MappedFile> file, std::size_t byte_offset,
                              std::size_t count);

    std::span<const Event> events() const noexcept { return span_; }
    std::size_t size() const noexcept { return span_.size(); }

    /// True when the events are plain RAM (owned vector, or a mapping that
    /// degraded to the heap-buffer fallback).  False only for real mmap
    /// backing — the case where the paging hints below do anything and
    /// out-of-core consumers should prefer sequential access.
    bool memory_resident() const noexcept { return file_ == nullptr || !file_->is_mapped(); }

    /// Readahead hint for a front-to-back scan of the whole source.
    void advise_sequential() const noexcept;

    /// Hints that events [0, end_event) will not be touched again by this
    /// scan: drops their resident pages for mmap sources (no-op in memory).
    /// Data stays valid — a later access refaults from the page cache.
    void release_until(std::size_t end_event) const noexcept;

private:
    std::shared_ptr<const std::vector<Event>> owned_;
    std::shared_ptr<const MappedFile> file_;
    std::size_t byte_offset_ = 0;
    std::span<const Event> span_;
};

/// The release-behind cadence of a front-to-back scan, shared by every
/// sequential consumer (aggregation's window pipeline, the natbin
/// validation pass): advises sequential access up front, then drops
/// consumed pages every ~4 MiB.  All calls are no-ops on memory-resident
/// sources, so callers use it unconditionally.
class SequentialScan {
public:
    explicit SequentialScan(const EventSource& source) : source_(&source) {
        source.advise_sequential();
    }

    /// Marks events [0, end_event) consumed.
    void consumed(std::size_t end_event) {
        if (end_event - released_ >= kChunkEvents) {
            source_->release_until(end_event);
            released_ = end_event;
        }
    }

    /// Marks the whole source consumed.
    void finish() { source_->release_until(source_->size()); }

private:
    /// Drop granularity: ~4 MiB of records.
    static constexpr std::size_t kChunkEvents = (std::size_t{4} << 20) / sizeof(Event);

    const EventSource* source_;
    std::size_t released_ = 0;
};

}  // namespace natscale
