#include "linkstream/window_variants.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace natscale {

GraphSeries aggregate_sliding(const LinkStream& stream, Time delta, Time stride) {
    NATSCALE_EXPECTS(delta >= 1);
    NATSCALE_EXPECTS(stride >= 1 && stride <= delta);
    const Time T = stream.period_end();
    // Windows start at 0, stride, 2*stride, ...; the last window is the
    // first one whose start reaches the end of the period.
    const WindowIndex K = std::max<WindowIndex>(1, ceil_div(T, stride));

    const auto events = stream.events();
    std::vector<Snapshot> snapshots;
    for (WindowIndex k = 1; k <= K; ++k) {
        const Time begin = (k - 1) * stride;
        const Time end = std::min<Time>(begin + delta, T);
        if (begin >= T) break;
        const auto first = std::lower_bound(
            events.begin(), events.end(), begin,
            [](const Event& e, Time t) { return e.t < t; });
        Snapshot snap;
        snap.k = k;
        for (auto it = first; it != events.end() && it->t < end; ++it) {
            snap.edges.emplace_back(it->u, it->v);
        }
        if (snap.edges.empty()) continue;
        std::sort(snap.edges.begin(), snap.edges.end());
        snap.edges.erase(std::unique(snap.edges.begin(), snap.edges.end()), snap.edges.end());
        snapshots.push_back(std::move(snap));
    }
    return GraphSeries(stream.num_nodes(), K, delta, stream.directed(), std::move(snapshots));
}

GraphSeries aggregate_growing(const LinkStream& stream, Time delta) {
    NATSCALE_EXPECTS(delta >= 1);
    const WindowIndex K = std::max<WindowIndex>(1, ceil_div(stream.period_end(), delta));

    // Accumulate distinct edges chronologically; snapshot k holds everything
    // seen before k*delta.
    std::vector<Snapshot> snapshots;
    std::vector<Edge> accumulated;
    const auto events = stream.events();
    std::size_t i = 0;
    for (WindowIndex k = 1; k <= K; ++k) {
        const Time end = k * delta;
        while (i < events.size() && events[i].t < end) {
            accumulated.emplace_back(events[i].u, events[i].v);
            ++i;
        }
        std::sort(accumulated.begin(), accumulated.end());
        accumulated.erase(std::unique(accumulated.begin(), accumulated.end()),
                          accumulated.end());
        if (!accumulated.empty()) {
            Snapshot snap;
            snap.k = k;
            snap.edges = accumulated;
            snapshots.push_back(std::move(snap));
        }
    }
    return GraphSeries(stream.num_nodes(), K, delta, stream.directed(), std::move(snapshots));
}

}  // namespace natscale
