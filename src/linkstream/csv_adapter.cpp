#include "linkstream/csv_adapter.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace natscale {

namespace {

constexpr std::size_t kMaxFields = 8;

/// Lenient split: runs of spaces/tabs/commas separate fields (the built-in
/// loader's behaviour).
std::size_t split_lenient(const std::string& line, std::string_view out[kMaxFields]) {
    std::size_t count = 0;
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto is_sep = [](char c) { return c == ' ' || c == '\t' || c == ',' || c == '\r'; };
    while (i < n && count < kMaxFields) {
        while (i < n && is_sep(line[i])) ++i;
        if (i >= n) break;
        const std::size_t start = i;
        while (i < n && !is_sep(line[i])) ++i;
        out[count++] = std::string_view(line).substr(start, i - start);
    }
    return count;
}

/// Strict split on one delimiter: every occurrence ends a field, so empty
/// fields are visible (and rejected by the caller).
std::size_t split_strict(const std::string& line, char delimiter,
                         std::string_view out[kMaxFields]) {
    std::string_view rest(line);
    if (!rest.empty() && rest.back() == '\r') rest.remove_suffix(1);
    std::size_t count = 0;
    while (count < kMaxFields) {
        const std::size_t pos = rest.find(delimiter);
        out[count++] = rest.substr(0, pos);
        if (pos == std::string_view::npos) break;
        rest.remove_prefix(pos + 1);
    }
    return count;
}

/// getline over all three line-ending conventions: \n, \r\n and the lone \r
/// of classic-Mac spreadsheet exports.  std::getline splits on \n only, which
/// turns a \r-delimited file into one giant "line" whose first row is parsed
/// and the rest silently swallowed as extra fields.  Returns false only at
/// EOF with nothing read.
bool read_csv_line(std::istream& is, std::string& line) {
    using traits = std::char_traits<char>;
    line.clear();
    std::streambuf* buf = is.rdbuf();
    int c = buf->sbumpc();
    if (traits::eq_int_type(c, traits::eof())) {
        is.setstate(std::ios::eofbit | std::ios::failbit);
        return false;
    }
    while (!traits::eq_int_type(c, traits::eof())) {
        if (c == '\n') return true;
        if (c == '\r') {
            if (buf->sgetc() == '\n') buf->sbumpc();  // \r\n counts once
            return true;
        }
        line.push_back(traits::to_char_type(c));
        c = buf->sbumpc();
    }
    return true;  // final line without a terminator
}

bool parse_csv_time(std::string_view field, double scale, Time& out) {
    double value = 0.0;
    const char* first = field.data();
    const char* last = field.data() + field.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) return false;
    const double scaled = value * scale;
    if (!(scaled >= 0.0) || scaled > 9.0e18) return false;
    out = static_cast<Time>(std::llround(scaled));
    return true;
}

struct ColumnRoles {
    std::size_t u = 0, v = 0, t = 0;
    std::size_t width = 0;  // minimum fields a row must carry
};

ColumnRoles resolve_columns(const std::string& columns, const std::string& origin) {
    validate_csv_columns(columns, origin);
    ColumnRoles roles;
    roles.width = columns.size();
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == 'u') roles.u = i;
        if (columns[i] == 'v') roles.v = i;
        if (columns[i] == 't') roles.t = i;
    }
    return roles;
}

LoadedStream parse_csv(std::istream& is, const CsvFormat& format,
                       const std::string& origin) {
    const ColumnRoles roles = resolve_columns(format.columns, origin);

    std::string line;
    std::size_t line_number = 0;

    std::vector<Event> events;
    std::vector<std::string> labels;
    std::unordered_map<std::string, NodeId> ids;
    auto intern = [&](std::string_view label) {
        auto [it, inserted] =
            ids.try_emplace(std::string(label), static_cast<NodeId>(labels.size()));
        if (inserted) labels.emplace_back(label);
        return it->second;
    };

    while (read_csv_line(is, line)) {
        ++line_number;
        if (line_number == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) {
            // UTF-8 BOM from Excel/Sheets exports; left in place it would be
            // interned into the first node label, splitting that node in two.
            line.erase(0, 3);
        }
        if (line_number <= format.skip_header) continue;
        std::string_view fields[kMaxFields];
        std::size_t nf;
        if (format.delimiter == '\0') {
            nf = split_lenient(line, fields);
            if (nf == 0) continue;  // blank
        } else {
            nf = split_strict(line, format.delimiter, fields);
            if (nf == 1 && fields[0].empty()) continue;  // blank
        }
        if (!fields[0].empty() && (fields[0].front() == '#' || fields[0].front() == '%')) {
            continue;  // comment
        }
        if (nf < roles.width) {
            throw io_error(origin, line_number,
                           "row has " + std::to_string(nf) + " fields, layout '" +
                               format.columns + "' needs at least " +
                               std::to_string(roles.width));
        }
        for (std::size_t i = 0; i < roles.width; ++i) {
            if (fields[i].empty()) {
                throw io_error(origin, line_number,
                               "empty field " + std::to_string(i + 1));
            }
        }
        Time t = 0;
        if (!parse_csv_time(fields[roles.t], format.time_scale, t)) {
            throw io_error(origin, line_number,
                           "bad timestamp '" + std::string(fields[roles.t]) + "'");
        }
        const NodeId u = intern(fields[roles.u]);
        const NodeId v = intern(fields[roles.v]);
        if (u == v) {
            if (format.skip_self_loops) continue;
            throw io_error(origin, line_number, "self-loop on node '" + labels[u] + "'");
        }
        events.push_back({u, v, t});
    }
    if (events.empty()) throw std::runtime_error(origin + ": no events");

    Time max_time = 0;
    for (const auto& e : events) max_time = std::max(max_time, e.t);
    LinkStream stream(std::move(events), static_cast<NodeId>(labels.size()), max_time + 1,
                      format.directed);
    return {std::move(stream), std::move(labels)};
}

}  // namespace

void validate_csv_columns(const std::string& columns, const std::string& origin) {
    std::size_t u = 0, v = 0, t = 0;
    bool junk = false;
    for (char c : columns) {
        if (c == 'u') ++u;
        else if (c == 'v') ++v;
        else if (c == 't') ++t;
        else if (c != '_') junk = true;
    }
    if (junk || u != 1 || v != 1 || t != 1 || columns.size() > kMaxFields) {
        throw io_error(origin,
                       "bad column layout '" + columns +
                           "' (expected a string over u, v, t, _ with exactly one of "
                           "each of u, v, t; e.g. uvt, tuv, uv_t)");
    }
}

LoadedStream parse_csv_stream(const std::string& text, const CsvFormat& format,
                              const std::string& origin) {
    std::istringstream is(text);
    return parse_csv(is, format, origin);
}

LoadedStream load_csv_stream(const std::string& path, const CsvFormat& format) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("cannot open '" + path + "'");
    return parse_csv(file, format, path);
}

}  // namespace natscale
