// Alternative aggregation window schemes (paper Section 1).
//
// Besides the disjoint equal-length windows of Definition 1 (the scheme the
// occupancy method is defined on), the literature also aggregates on
//   * overlapping windows of length Delta advancing by a stride < Delta
//     (sliding windows, refs [20, 1, 29, 40, 5, 37]), and
//   * growing windows that all start at the beginning of the period of
//     study (cumulative aggregation, refs [21, 31, 14, 37]).
//
// Both are provided so the library can reproduce the comparative studies the
// paper cites ([37]: the window type strongly affects downstream analyses)
// and so downstream users can inspect their data under every convention.
// Note that a sliding-window "series" is NOT a partition of time: the same
// link occurs in several snapshots, and temporal-path semantics over
// overlapping snapshots are not defined by the paper — these series are for
// per-snapshot (structural) statistics only.
#pragma once

#include "linkstream/graph_series.hpp"
#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

/// Sliding windows: snapshot k (1-based) covers
/// [(k-1)*stride, (k-1)*stride + delta).  stride == delta reduces to the
/// disjoint aggregation of Definition 1.  Preconditions: 1 <= stride <=
/// delta.  The number of snapshots is the smallest K covering [0, T).
GraphSeries aggregate_sliding(const LinkStream& stream, Time delta, Time stride);

/// Growing windows: snapshot k covers [0, k*delta) — every snapshot contains
/// all links seen so far.  Precondition: delta >= 1.
GraphSeries aggregate_growing(const LinkStream& stream, Time delta);

}  // namespace natscale
