// Grids of aggregation periods for Delta sweeps.
//
// The occupancy method evaluates the occupancy distribution across the whole
// range of aggregation periods, from the timestamp resolution (1 tick) to
// the full period of study T.  A geometric grid covers that range (4-7
// decades for the paper's datasets) with a bounded number of O(nM) sweeps;
// the saturation-scale search then refines linearly around the optimum.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace natscale {

/// Geometric grid of `count` distinct integer periods covering [lo, hi].
/// Consecutive duplicates arising from rounding are removed, so the result
/// may hold fewer than `count` values.  Preconditions: 1 <= lo <= hi,
/// count >= 2.
std::vector<Time> geometric_delta_grid(Time lo, Time hi, std::size_t count);

/// Linear grid of up to `count` distinct integer periods covering [lo, hi].
std::vector<Time> linear_delta_grid(Time lo, Time hi, std::size_t count);

/// Merges two sorted grids, removing duplicates.  Preconditions: both
/// inputs sorted (checked; std::merge would otherwise silently produce a
/// non-sorted, non-deduplicated grid).
std::vector<Time> merge_delta_grids(const std::vector<Time>& a, const std::vector<Time>& b);

}  // namespace natscale
