#include "core/report.hpp"

#include <ostream>

#include "util/format.hpp"
#include "util/table.hpp"

namespace natscale {

void print_stream_summary(std::ostream& os, const std::string& name, const StreamStats& stats,
                          double ticks_per_second) {
    os << name << ": n=" << stats.num_nodes << " events=" << format_count(stats.num_events)
       << " T=" << format_duration(static_cast<double>(stats.period_end) * ticks_per_second)
       << " activity=" << format_fixed(stats.events_per_node_per_day, 2) << " msg/node/day"
       << " mean-intercontact="
       << format_duration(stats.mean_intercontact_ticks * ticks_per_second) << '\n';
}

std::string saturation_summary(const SaturationResult& result, double ticks_per_second) {
    return "gamma = " + std::to_string(result.gamma) + " ticks (" +
           format_duration(static_cast<double>(result.gamma) * ticks_per_second) + "), " +
           metric_name(result.metric) + " " +
           format_fixed(score_of(result.at_gamma.scores, result.metric), 3);
}

void print_saturation_report(std::ostream& os, const SaturationResult& result,
                             double ticks_per_second) {
    os << saturation_summary(result, ticks_per_second) << '\n';
    ConsoleTable table({"delta(ticks)", "delta", "M-K prox", "stddev", "Shannon(10)", "CRE",
                        "trips", "mean occ"});
    for (const auto& point : result.curve) {
        table.add_row({std::to_string(point.delta),
                       format_duration(static_cast<double>(point.delta) * ticks_per_second),
                       format_fixed(point.scores.mk_proximity, 4),
                       format_fixed(point.scores.std_deviation, 4),
                       format_fixed(point.scores.shannon_entropy, 4),
                       format_fixed(point.scores.cre, 4), format_count(point.num_trips),
                       format_fixed(point.occupancy_mean, 4)});
    }
    table.print(os);
}

}  // namespace natscale
