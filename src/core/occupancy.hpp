// Occupancy-rate distributions of aggregated graph series (paper Section 4).
//
// For a given aggregation period Delta, the occupancy distribution collects
// occ(P) = hops(P) / time(P) over all minimal trips P of the aggregated
// series G_Delta (all ordered node pairs, all time intervals).  Its shape as
// Delta varies — stretching from a spike near 0 to a spike at 1 through a
// maximally uniform intermediate state — is the phenomenon the occupancy
// method exploits.
#pragma once

#include <cstdint>

#include "linkstream/graph_series.hpp"
#include "linkstream/link_stream.hpp"
#include "natscale/sweep_config.hpp"
#include "stats/empirical_distribution.hpp"
#include "stats/histogram01.hpp"
#include "temporal/reachability.hpp"
#include "util/types.hpp"

namespace natscale {

/// Streaming histogram of the occupancy rates of all minimal trips of the
/// series (histogram error O(1/num_bins); see Histogram01).  The scan
/// backend is selected automatically from n and event density unless forced
/// (see temporal/reachability_backend.hpp); the histogram is bit-identical
/// either way.
///
/// `scan_threads` enables intra-scan column parallelism for dense scans
/// (temporal/column_shards): 1 (default) scans sequentially, 0 uses the
/// hardware concurrency, N fans the fixed column shards out over up to N
/// threads.  The histogram — bins and moments — is bit-identical for every
/// value (the shard partition depends on n alone and the accumulators are
/// split-invariant); sparse scans ignore the setting.
Histogram01 occupancy_histogram(const GraphSeries& series,
                                std::size_t num_bins = Histogram01::kDefaultBins,
                                ReachabilityBackend backend = ReachabilityBackend::automatic,
                                std::size_t scan_threads = 1);

/// Aggregates the stream at `delta` and computes the occupancy histogram.
/// Aggregation is window-sequential (linkstream/aggregation), so an
/// mmap-backed stream (open_natbin) is consumed out-of-core: peak residency
/// is the per-window working set, and the histogram is bit-identical to the
/// in-memory path.
Histogram01 occupancy_histogram(const LinkStream& stream, Time delta,
                                std::size_t num_bins = Histogram01::kDefaultBins,
                                ReachabilityBackend backend = ReachabilityBackend::automatic,
                                std::size_t scan_threads = 1);

/// SweepConfig-driven variant of the single-period histogram: reads the
/// histogram_bins / backend / scan_threads knobs of the unified config
/// (natscale/sweep_config.hpp) and ignores the rest.  Identical output to
/// the explicit-knob overload above.
Histogram01 occupancy_histogram(const LinkStream& stream, Time delta,
                                const SweepConfig& config);

/// Exact sample-storing variant for small series and for the tests.
EmpiricalDistribution occupancy_distribution(
    const GraphSeries& series, ReachabilityBackend backend = ReachabilityBackend::automatic);

/// Count of minimal trips of the aggregated series.
std::uint64_t count_minimal_trips(
    const GraphSeries& series, ReachabilityBackend backend = ReachabilityBackend::automatic);

}  // namespace natscale
