// The classical graph-series properties of the paper's Fig. 2 — the
// "difficulty of the problem" panel: as the aggregation period Delta grows,
// every classical property drifts smoothly between its extremes and never
// singles out a characteristic scale.
//
// Per aggregation period, the sweep reports:
//   * mean snapshot density (top-left),
//   * mean number of non-isolated vertices and mean size of the largest
//     connected component per snapshot (top-right),
//   * mean distance in time d_time over all (u, v, t) finite (bottom-left),
//   * mean distance in hops and in absolute time (bottom-right).
//
// Snapshot means are taken over non-empty snapshots (matching the paper's
// reported minima, e.g. an LCC of 2.3 nodes for Irvine at Delta = 1 s, which
// is only possible if empty windows are excluded); the all-window means are
// also exposed.
#pragma once

#include <vector>

#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

struct ClassicalPoint {
    Time delta = 0;

    // Snapshot structure (Fig. 2 top row).
    double mean_density_nonempty = 0.0;  // mean over non-empty snapshots
    double mean_density_all = 0.0;       // mean over all K windows
    double mean_degree_nonempty = 0.0;
    double mean_non_isolated = 0.0;      // vertices with >= 1 link, non-empty snapshots
    double mean_largest_cc = 0.0;        // largest connected component size

    // Temporal distances (Fig. 2 bottom row); only filled when the sweep is
    // run with distances enabled.
    double mean_dtime_windows = 0.0;   // mean d_time, in windows
    double mean_dhops = 0.0;           // mean d_hops
    double mean_dabstime_ticks = 0.0;  // Delta * mean d_time, in ticks
    double finite_pairs_fraction = 0.0;  // share of (u,v,t) with finite distance
};

/// Evaluates the classical properties at one aggregation period.
/// `with_distances` adds one O(nM) reachability sweep (plus O(n^2) memory).
ClassicalPoint classical_properties(const LinkStream& stream, Time delta,
                                    bool with_distances = true);

/// Sweep over a grid of periods (Fig. 2's x-axis).
std::vector<ClassicalPoint> classical_curve(const LinkStream& stream,
                                            const std::vector<Time>& deltas,
                                            bool with_distances = true);

}  // namespace natscale
