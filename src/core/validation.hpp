// Validation measures of the aggregation loss (paper Section 8, Fig. 8).
//
// Two quantifications of how much propagation structure an aggregation
// period destroys:
//   * the proportion of shortest transitions of the original link stream
//     whose two hops fall into one window (pessimistic: counts every loss),
//   * the mean elongation factor of the minimal trips of the aggregated
//     series relative to the fastest original-stream trip available in the
//     same absolute time window (optimistic: lost transitions replaced by
//     slightly slower ones barely register).
// Together they bracket the damage; both jump around the saturation scale.
#pragma once

#include <cstdint>
#include <vector>

#include "linkstream/link_stream.hpp"
#include "natscale/sweep_config.hpp"
#include "temporal/reachability.hpp"
#include "temporal/transitions.hpp"
#include "temporal/trip_store.hpp"
#include "util/types.hpp"

namespace natscale {

struct LostTransitionPoint {
    Time delta = 0;
    double lost_fraction = 0.0;  // in [0, 1]
};

/// Fig. 8 left: proportion of shortest transitions lost per period.  The
/// transition set is computed once (one stream sweep); each period then
/// costs O(#transitions).
std::vector<LostTransitionPoint> lost_transitions_curve(const LinkStream& stream,
                                                        const std::vector<Time>& deltas);
std::vector<LostTransitionPoint> lost_transitions_curve(const ShortestTransitionSet& set,
                                                        const std::vector<Time>& deltas);

struct ElongationPoint {
    Time delta = 0;
    double mean_elongation = 0.0;   // mean e_P over measured minimal trips
    std::uint64_t measured_trips = 0;  // trips with dep != arr among sampled pairs
};

/// Deprecated alias: the elongation knobs (max_stored_trips plus the shared
/// execution section) live in the unified SweepConfig now
/// (natscale/sweep_config.hpp).  Every field keeps its name and default, so
/// existing callers compile unchanged; new code should say SweepConfig.
using ElongationOptions = SweepConfig;

/// Fig. 8 right: mean elongation factor e_P = (t_v - t_u + 1) * Delta /
/// time_L(P) (Definition 8) of the minimal trips of G_Delta, per period.
/// Trips with t_u == t_v are skipped, as in the paper (their elongation is
/// undefined).  Deterministic pair sampling keeps memory bounded on large
/// streams while leaving the mean unbiased.  Aggregation is shared across
/// the periods (one DeltaSweepEngine) and the per-period scans run on a
/// util/thread_pool.
std::vector<ElongationPoint> elongation_curve(const LinkStream& stream,
                                              const std::vector<Time>& deltas,
                                              const SweepConfig& options = {});

/// Single-period elongation against a prebuilt trip store (whose sampling
/// divisor is reused for the series scan).
ElongationPoint elongation_at(const LinkStream& stream, Time delta,
                              const StreamTripStore& store);

}  // namespace natscale
