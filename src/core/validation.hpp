// Validation measures of the aggregation loss (paper Section 8, Fig. 8).
//
// Two quantifications of how much propagation structure an aggregation
// period destroys:
//   * the proportion of shortest transitions of the original link stream
//     whose two hops fall into one window (pessimistic: counts every loss),
//   * the mean elongation factor of the minimal trips of the aggregated
//     series relative to the fastest original-stream trip available in the
//     same absolute time window (optimistic: lost transitions replaced by
//     slightly slower ones barely register).
// Together they bracket the damage; both jump around the saturation scale.
#pragma once

#include <cstdint>
#include <vector>

#include "linkstream/link_stream.hpp"
#include "temporal/reachability.hpp"
#include "temporal/transitions.hpp"
#include "temporal/trip_store.hpp"
#include "util/types.hpp"

namespace natscale {

struct LostTransitionPoint {
    Time delta = 0;
    double lost_fraction = 0.0;  // in [0, 1]
};

/// Fig. 8 left: proportion of shortest transitions lost per period.  The
/// transition set is computed once (one stream sweep); each period then
/// costs O(#transitions).
std::vector<LostTransitionPoint> lost_transitions_curve(const LinkStream& stream,
                                                        const std::vector<Time>& deltas);
std::vector<LostTransitionPoint> lost_transitions_curve(const ShortestTransitionSet& set,
                                                        const std::vector<Time>& deltas);

struct ElongationPoint {
    Time delta = 0;
    double mean_elongation = 0.0;   // mean e_P over measured minimal trips
    std::uint64_t measured_trips = 0;  // trips with dep != arr among sampled pairs
};

struct ElongationOptions {
    /// Upper bound on stored stream trips; the pair-sampling divisor is
    /// chosen automatically as ceil(total/limit).  0 disables sampling.
    std::uint64_t max_stored_trips = 4'000'000;

    /// Threads for the per-period fan-out (the periods are independent);
    /// 0 = hardware concurrency, 1 = sequential.  The curve is bit-identical
    /// for every thread count.
    std::size_t num_threads = 0;

    /// Intra-scan column parallelism (temporal/column_shards) for narrow
    /// period lists: 1 = disabled (default); any other value enables the
    /// per-shard decomposition, whose tasks share the num_threads-wide pool
    /// (num_threads remains the concurrency cap).  The per-trip elongation
    /// terms accumulate in exact, order-independent sums
    /// (stats/exact_sum.hpp), so the curve is bit-identical for every
    /// (num_threads, scan_threads) combination.
    std::size_t scan_threads = 1;

    /// Reachability backend of the per-period series scans; `automatic`
    /// picks dense or sparse from n and event density.  The curve is
    /// bit-identical for every choice.
    ReachabilityBackend backend = ReachabilityBackend::automatic;
};

/// Fig. 8 right: mean elongation factor e_P = (t_v - t_u + 1) * Delta /
/// time_L(P) (Definition 8) of the minimal trips of G_Delta, per period.
/// Trips with t_u == t_v are skipped, as in the paper (their elongation is
/// undefined).  Deterministic pair sampling keeps memory bounded on large
/// streams while leaving the mean unbiased.  Aggregation is shared across
/// the periods (one DeltaSweepEngine) and the per-period scans run on a
/// util/thread_pool.
std::vector<ElongationPoint> elongation_curve(const LinkStream& stream,
                                              const std::vector<Time>& deltas,
                                              const ElongationOptions& options = {});

/// Single-period elongation against a prebuilt trip store (whose sampling
/// divisor is reused for the series scan).
ElongationPoint elongation_at(const LinkStream& stream, Time delta,
                              const StreamTripStore& store);

}  // namespace natscale
