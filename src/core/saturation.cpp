#include "core/saturation.hpp"

#include <algorithm>

#include "core/delta_grid.hpp"
#include "core/delta_sweep.hpp"
#include "core/occupancy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace natscale {

Time SaturationResult::gamma_for(UniformityMetric which) const {
    Time best_delta = 0;
    double best_score = -1.0;
    for (const auto& point : curve) {
        const double score = score_of(point.scores, which);
        if (score > best_score) {
            best_score = score;
            best_delta = point.delta;
        }
    }
    return best_delta;
}

DeltaSweepOptions sweep_options_of(const SweepConfig& options) {
    DeltaSweepOptions sweep;
    sweep.histogram_bins = options.histogram_bins;
    sweep.shannon_slots = options.shannon_slots;
    sweep.num_threads = options.num_threads;
    sweep.scan_threads = options.scan_threads;
    sweep.backend = options.backend;
    sweep.aggregation = options.aggregation;
    sweep.index_spill = options.index_spill;
    return sweep;
}

DeltaPoint evaluate_delta(const LinkStream& stream, Time delta,
                          const SweepConfig& options, Histogram01* histogram_out) {
    DeltaPoint point;
    point.delta = delta;
    Histogram01 hist = occupancy_histogram(stream, delta, options.histogram_bins,
                                           options.backend, options.scan_threads);
    point.scores = compute_all_metrics(hist, options.shannon_slots);
    point.num_trips = hist.total();
    point.occupancy_mean = hist.mean();
    if (histogram_out != nullptr) *histogram_out = std::move(hist);
    return point;
}

namespace {

/// Curve point plus the histogram it was computed from (retained so the
/// gamma histogram needs no extra sweep at the end of the search).
struct CurvePoint {
    DeltaPoint point;
    Histogram01 histogram{Histogram01::kDefaultBins};
};

/// Batch-evaluates every delta of `grid` not present in `curve` yet and
/// inserts the results in delta order.
void evaluate_grid(const GridEvaluator& evaluate, const std::vector<Time>& grid,
                   std::vector<CurvePoint>& curve) {
    std::vector<Time> missing;
    missing.reserve(grid.size());
    for (Time delta : grid) {
        const auto it = std::lower_bound(
            curve.begin(), curve.end(), delta,
            [](const CurvePoint& p, Time d) { return p.point.delta < d; });
        if (it != curve.end() && it->point.delta == delta) continue;
        missing.push_back(delta);
    }
    if (missing.empty()) return;

    std::vector<Histogram01> histograms;
    std::vector<DeltaPoint> points = evaluate(missing, &histograms);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto it = std::lower_bound(
            curve.begin(), curve.end(), points[i].delta,
            [](const CurvePoint& p, Time d) { return p.point.delta < d; });
        curve.insert(it, CurvePoint{points[i], std::move(histograms[i])});
    }
}

std::size_t argmax_index(const std::vector<CurvePoint>& curve, UniformityMetric metric) {
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const double score = score_of(curve[i].point.scores, metric);
        if (score > best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

}  // namespace

SaturationResult find_saturation_scale_with(const GridEvaluator& evaluate, Time lo,
                                            Time hi, const SweepConfig& options) {
    NATSCALE_EXPECTS(options.coarse_points >= 2);
    NATSCALE_EXPECTS(lo >= 1 && lo <= hi);

    SaturationResult result;
    result.metric = options.metric;

    std::vector<CurvePoint> curve;
    {
        obs::Span span("saturation.coarse_grid");
        span.attr("points", static_cast<std::uint64_t>(options.coarse_points));
        evaluate_grid(evaluate, geometric_delta_grid(lo, hi, options.coarse_points), curve);
    }

    static obs::Counter& rounds_run = obs::counter("saturation.refine_rounds");
    for (std::size_t round = 0; round < options.refine_rounds; ++round) {
        const std::size_t best = argmax_index(curve, options.metric);
        const Time bracket_lo = best == 0 ? curve.front().point.delta
                                          : curve[best - 1].point.delta;
        const Time bracket_hi = best + 1 >= curve.size() ? curve.back().point.delta
                                                         : curve[best + 1].point.delta;
        if (bracket_hi - bracket_lo <= 2) break;  // already at tick resolution
        obs::Span span("saturation.round");
        if (span.active()) {
            span.attr("round", static_cast<std::uint64_t>(round));
            span.attr("bracket_lo", static_cast<std::int64_t>(bracket_lo));
            span.attr("bracket_hi", static_cast<std::int64_t>(bracket_hi));
        }
        rounds_run.add();
        evaluate_grid(evaluate,
                      linear_delta_grid(bracket_lo, bracket_hi,
                                        std::max<std::size_t>(options.refine_points, 3)),
                      curve);
    }

    const std::size_t best = argmax_index(curve, options.metric);
    result.at_gamma = curve[best].point;
    result.gamma = result.at_gamma.delta;
    result.gamma_histogram = std::move(curve[best].histogram);
    result.curve.reserve(curve.size());
    for (const auto& entry : curve) result.curve.push_back(entry.point);
    return result;
}

SaturationResult find_saturation_scale(const LinkStream& stream,
                                       const SweepConfig& options) {
    NATSCALE_EXPECTS(!stream.empty());

    const Time lo = options.min_delta > 0 ? options.min_delta : 1;
    const Time hi = options.max_delta > 0 ? options.max_delta : stream.period_end();

    DeltaSweepEngine engine(stream, sweep_options_of(options));
    return find_saturation_scale_with(
        [&engine](std::span<const Time> grid, std::vector<Histogram01>* histograms) {
            return engine.evaluate(grid, histograms);
        },
        lo, hi, options);
}

}  // namespace natscale
