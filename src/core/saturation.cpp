#include "core/saturation.hpp"

#include <algorithm>

#include "core/delta_grid.hpp"
#include "core/occupancy.hpp"
#include "linkstream/aggregation.hpp"
#include "temporal/reachability.hpp"
#include "util/contracts.hpp"

namespace natscale {

Time SaturationResult::gamma_for(UniformityMetric which) const {
    Time best_delta = 0;
    double best_score = -1.0;
    for (const auto& point : curve) {
        const double score = score_of(point.scores, which);
        if (score > best_score) {
            best_score = score;
            best_delta = point.delta;
        }
    }
    return best_delta;
}

DeltaPoint evaluate_delta(const LinkStream& stream, Time delta,
                          const SaturationOptions& options, Histogram01* histogram_out) {
    DeltaPoint point;
    point.delta = delta;
    Histogram01 hist = occupancy_histogram(stream, delta, options.histogram_bins);
    point.scores = compute_all_metrics(hist, options.shannon_slots);
    point.num_trips = hist.total();
    point.occupancy_mean = hist.mean();
    if (histogram_out != nullptr) *histogram_out = std::move(hist);
    return point;
}

namespace {

/// Inserts points for every delta of `grid` not present in `curve` yet.
void evaluate_grid(const LinkStream& stream, const std::vector<Time>& grid,
                   const SaturationOptions& options, std::vector<DeltaPoint>& curve) {
    for (Time delta : grid) {
        const auto it = std::lower_bound(
            curve.begin(), curve.end(), delta,
            [](const DeltaPoint& p, Time d) { return p.delta < d; });
        if (it != curve.end() && it->delta == delta) continue;
        curve.insert(it, evaluate_delta(stream, delta, options, nullptr));
    }
}

std::size_t argmax_index(const std::vector<DeltaPoint>& curve, UniformityMetric metric) {
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const double score = score_of(curve[i].scores, metric);
        if (score > best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

}  // namespace

SaturationResult find_saturation_scale(const LinkStream& stream,
                                       const SaturationOptions& options) {
    NATSCALE_EXPECTS(!stream.empty());
    NATSCALE_EXPECTS(options.coarse_points >= 2);

    const Time lo = options.min_delta > 0 ? options.min_delta : 1;
    const Time hi = options.max_delta > 0 ? options.max_delta : stream.period_end();
    NATSCALE_EXPECTS(lo >= 1 && lo <= hi);

    SaturationResult result;
    result.metric = options.metric;

    evaluate_grid(stream, geometric_delta_grid(lo, hi, options.coarse_points), options,
                  result.curve);

    for (std::size_t round = 0; round < options.refine_rounds; ++round) {
        const std::size_t best = argmax_index(result.curve, options.metric);
        const Time bracket_lo = best == 0 ? result.curve.front().delta
                                          : result.curve[best - 1].delta;
        const Time bracket_hi = best + 1 >= result.curve.size()
                                    ? result.curve.back().delta
                                    : result.curve[best + 1].delta;
        if (bracket_hi - bracket_lo <= 2) break;  // already at tick resolution
        evaluate_grid(stream,
                      linear_delta_grid(bracket_lo, bracket_hi,
                                        std::max<std::size_t>(options.refine_points, 3)),
                      options, result.curve);
    }

    const std::size_t best = argmax_index(result.curve, options.metric);
    result.at_gamma = result.curve[best];
    result.gamma = result.at_gamma.delta;
    // Re-evaluate once more to surface the histogram at gamma.
    Histogram01 hist(options.histogram_bins);
    evaluate_delta(stream, result.gamma, options, &hist);
    result.gamma_histogram = std::move(hist);
    return result;
}

}  // namespace natscale
