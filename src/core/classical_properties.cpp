#include "core/classical_properties.hpp"

#include "graph/connected_components.hpp"
#include "graph/metrics.hpp"
#include "linkstream/aggregation.hpp"
#include "temporal/distance_stats.hpp"
#include "temporal/reachability.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace natscale {

ClassicalPoint classical_properties(const LinkStream& stream, Time delta, bool with_distances) {
    NATSCALE_EXPECTS(!stream.empty());
    const GraphSeries series = aggregate(stream, delta);
    const NodeId n = series.num_nodes();

    ClassicalPoint point;
    point.delta = delta;

    KahanSum density_sum;
    KahanSum degree_sum;
    KahanSum non_isolated_sum;
    KahanSum lcc_sum;
    EpochUnionFind uf(n);
    for (const auto& snap : series.snapshots()) {
        density_sum.add(density(snap.edges.size(), n, series.directed()));
        degree_sum.add((series.directed() ? 1.0 : 2.0) *
                       static_cast<double>(snap.edges.size()) / static_cast<double>(n));
        const ComponentSummary summary = summarize_components(snap.edges, uf);
        non_isolated_sum.add(static_cast<double>(summary.non_isolated_nodes));
        lcc_sum.add(static_cast<double>(summary.largest_component));
    }
    const double nonempty = static_cast<double>(series.num_nonempty_windows());
    const double all_windows = static_cast<double>(series.num_windows());
    if (nonempty > 0) {
        point.mean_density_nonempty = density_sum.value() / nonempty;
        point.mean_degree_nonempty = degree_sum.value() / nonempty;
        point.mean_non_isolated = non_isolated_sum.value() / nonempty;
        point.mean_largest_cc = lcc_sum.value() / nonempty;
    }
    point.mean_density_all = density_sum.value() / all_windows;

    if (with_distances) {
        DistanceAccumulator accumulator;
        ReachabilityOptions options;
        options.distances = &accumulator;
        TemporalReachability engine;
        engine.scan_series(series, [](const MinimalTrip&) {}, options);
        const DistanceStats& stats = accumulator.stats();
        point.mean_dtime_windows = stats.mean_dtime_windows();
        point.mean_dhops = stats.mean_dhops();
        point.mean_dabstime_ticks = stats.mean_dabstime_ticks(delta);
        const double total_triples = static_cast<double>(n) * (static_cast<double>(n) - 1.0) *
                                     static_cast<double>(series.num_windows());
        point.finite_pairs_fraction =
            total_triples == 0.0 ? 0.0 : stats.finite_count / total_triples;
    }
    return point;
}

std::vector<ClassicalPoint> classical_curve(const LinkStream& stream,
                                            const std::vector<Time>& deltas,
                                            bool with_distances) {
    std::vector<ClassicalPoint> curve;
    curve.reserve(deltas.size());
    for (Time delta : deltas) {
        curve.push_back(classical_properties(stream, delta, with_distances));
    }
    return curve;
}

}  // namespace natscale
