#include "core/delta_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace natscale {

std::vector<Time> geometric_delta_grid(Time lo, Time hi, std::size_t count) {
    NATSCALE_EXPECTS(lo >= 1 && lo <= hi);
    NATSCALE_EXPECTS(count >= 2);
    if (lo == hi) return {lo};
    const auto values = geomspace(static_cast<double>(lo), static_cast<double>(hi), count);
    std::vector<Time> grid;
    grid.reserve(values.size());
    for (double v : values) {
        const Time t = static_cast<Time>(std::llround(v));
        if (grid.empty() || t > grid.back()) grid.push_back(t);
    }
    return grid;
}

std::vector<Time> linear_delta_grid(Time lo, Time hi, std::size_t count) {
    NATSCALE_EXPECTS(lo >= 1 && lo <= hi);
    NATSCALE_EXPECTS(count >= 2);
    if (lo == hi) return {lo};
    const auto values = linspace(static_cast<double>(lo), static_cast<double>(hi), count);
    std::vector<Time> grid;
    grid.reserve(values.size());
    for (double v : values) {
        const Time t = static_cast<Time>(std::llround(v));
        if (grid.empty() || t > grid.back()) grid.push_back(t);
    }
    return grid;
}

std::vector<Time> merge_delta_grids(const std::vector<Time>& a, const std::vector<Time>& b) {
    // std::merge requires sorted ranges; an unsorted input would silently
    // yield a non-sorted, non-deduplicated grid downstream.
    NATSCALE_EXPECTS(std::is_sorted(a.begin(), a.end()));
    NATSCALE_EXPECTS(std::is_sorted(b.begin(), b.end()));
    std::vector<Time> merged;
    merged.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
}

}  // namespace natscale
