// JSON export of occupancy-method results, so that the saturation scale and
// its supporting curves can be consumed by plotting or monitoring pipelines
// without parsing console tables.
#pragma once

#include <string>

#include "core/saturation.hpp"
#include "core/segmentation.hpp"
#include "linkstream/stream_stats.hpp"

namespace natscale {

/// {"gamma": ..., "metric": "...", "curve": [{"delta": ..., ...}, ...],
///  "icd_at_gamma": [[x, y], ...]}
std::string saturation_result_to_json(const SaturationResult& result);

/// {"num_nodes": ..., "num_events": ..., "activity_per_day": ..., ...}
std::string stream_stats_to_json(const StreamStats& stats);

/// {"split": ..., "gamma_high": ..., "segments": [...]}
std::string segmented_saturation_to_json(const SegmentedSaturation& result);

}  // namespace natscale
