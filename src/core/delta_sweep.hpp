// Batched evaluation of a whole grid of aggregation periods (the hot path
// of the occupancy method).
//
// The saturation-scale search evaluates the occupancy distribution over
// dozens of aggregation periods Delta of the SAME stream.  Evaluating each
// period independently (linkstream/aggregation + one reachability scan)
// re-does per-window edge sorting and deduplication from scratch every
// time; DeltaSweepEngine shares that work across the grid:
//
//   * the time-sorted event buffer is shared (it lives in the LinkStream),
//     and one extra (u, v, t)-ordered permutation of it is computed once at
//     construction.  Aggregating at any Delta is then a single O(E) pass:
//     window boundaries come from the time order, per-window edge lists
//     come out of the pair order already sorted and deduplicated — no
//     per-window sort, no per-call dedup;
//   * the independent per-Delta reachability scans fan out over a
//     util/thread_pool, with one reusable TemporalReachability engine per
//     worker so the O(n^2) sweep state is allocated once per thread, not
//     once per period.
//
// Results are deterministic and thread-count independent: every period is
// evaluated by exactly one task writing to its own output slot, and the
// per-period computation is bit-identical to the legacy single-period path
// (same snapshot edge order, same trip emission order, same floating-point
// accumulation order).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "linkstream/graph_series.hpp"
#include "linkstream/link_stream.hpp"
#include "stats/histogram01.hpp"
#include "stats/uniformity.hpp"
#include "temporal/reachability.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace natscale {

/// One evaluated aggregation period.
struct DeltaPoint {
    Time delta = 0;                 // ticks
    UniformityScores scores;        // all five Section 7 metrics
    std::uint64_t num_trips = 0;    // minimal trips of G_Delta
    double occupancy_mean = 0.0;
};

struct DeltaSweepOptions {
    /// Occupancy histogram resolution.
    std::size_t histogram_bins = Histogram01::kDefaultBins;

    /// Slot count for the Shannon-entropy metric (Section 7 uses 10).
    std::size_t shannon_slots = 10;

    /// Threads for the per-Delta fan-out; 0 = hardware concurrency, 1 =
    /// fully sequential (no pool threads are spawned).
    std::size_t num_threads = 0;

    /// Reachability backend of the per-Delta scans.  `automatic` picks dense
    /// or sparse from n and event density (temporal/reachability_backend);
    /// the evaluated points are bit-identical either way, but the sparse
    /// backend bounds per-worker memory by the reachable-pair count instead
    /// of threads x n^2 x 12 B.
    ReachabilityBackend backend = ReachabilityBackend::automatic;
};

class DeltaSweepEngine {
public:
    /// Indexes `stream` for repeated aggregation: one O(E log E) pair-order
    /// sort, amortized over every subsequent evaluate()/aggregate() call.
    /// The stream must outlive the engine.
    explicit DeltaSweepEngine(const LinkStream& stream, DeltaSweepOptions options = {});

    const LinkStream& stream() const noexcept { return *stream_; }
    const DeltaSweepOptions& options() const noexcept { return options_; }

    /// Evaluates every period of `grid` (occupancy histogram + all five
    /// uniformity metrics), in grid order.  When `histograms_out` is
    /// non-null it receives the per-period occupancy histograms, aligned
    /// with the returned points.  Periods are independent, so they run in
    /// parallel; the result is identical for any thread count.
    /// Preconditions: every delta >= 1.
    std::vector<DeltaPoint> evaluate(std::span<const Time> grid,
                                     std::vector<Histogram01>* histograms_out = nullptr);

    /// Shared-buffer aggregation at one period: same GraphSeries as
    /// linkstream/aggregation's aggregate(stream, delta), built in O(E)
    /// from the precomputed pair order.  Thread-safe (const).
    /// Preconditions: delta >= 1.
    GraphSeries aggregate(Time delta) const;

private:
    ThreadPool& pool();

    const LinkStream* stream_;
    DeltaSweepOptions options_;

    /// Event indices sorted by (u, v, t) — the stable pair-order view of
    /// the shared time-sorted event buffer.
    std::vector<std::uint32_t> pair_order_;

    /// Created on first evaluate(); aggregate()-only users never pay for
    /// pool threads.
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace natscale
