// Batched evaluation of a whole grid of aggregation periods (the hot path
// of the occupancy method).
//
// The saturation-scale search evaluates the occupancy distribution over
// dozens of aggregation periods Delta of the SAME stream.  Evaluating each
// period independently (linkstream/aggregation + one reachability scan)
// re-does per-window edge sorting and deduplication from scratch every
// time; DeltaSweepEngine shares that work across the grid:
//
//   * the time-sorted event buffer is shared (it lives behind the
//     LinkStream's EventSource — in RAM or an mmap'd .natbin trace), and
//     one extra (u, v, t)-ordered index over it is computed once at
//     construction (optionally spilled to a mmap'd temp file, see
//     DeltaSweepOptions::IndexSpill).  Aggregating at any Delta is then a
//     single O(E) pass: window boundaries come from the time order,
//     per-window edge lists come out of the pair order already sorted and
//     deduplicated — no per-window sort, no per-call dedup.  For
//     mmap-backed sources the engine instead defaults to the chunked
//     window-sequential pipeline of linkstream/aggregation, whose peak
//     residency is the per-window working set, not the trace;
//   * the independent per-Delta reachability scans fan out over a
//     util/thread_pool, with one reusable TemporalReachability engine per
//     worker so the O(n^2) sweep state is allocated once per thread, not
//     once per period.
//
// Results are deterministic and thread-count independent: every period is
// evaluated by exactly one task writing to its own output slot, and the
// per-period computation is bit-identical to the legacy single-period path
// (same snapshot edge order, same trip emission order, same floating-point
// accumulation order).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "linkstream/graph_series.hpp"
#include "linkstream/link_stream.hpp"
#include "natscale/sweep_config.hpp"
#include "stats/histogram01.hpp"
#include "stats/uniformity.hpp"
#include "temporal/reachability.hpp"
#include "util/mmap_file.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace natscale {

/// One evaluated aggregation period.
struct DeltaPoint {
    Time delta = 0;                 // ticks
    UniformityScores scores;        // all five Section 7 metrics
    std::uint64_t num_trips = 0;    // minimal trips of G_Delta
    double occupancy_mean = 0.0;
};

/// Scores one evaluated period from its occupancy histogram: all five
/// uniformity metrics, trip count and mean.  This is THE per-period
/// evaluation — evaluate() applies it to every grid point, and the online
/// engine (online/incremental_sweep) applies it to incrementally maintained
/// histograms, so batch and online points are computed by the same code.
DeltaPoint score_delta_point(Time delta, const Histogram01& histogram,
                             std::size_t shannon_slots);

struct DeltaSweepOptions {
    /// Occupancy histogram resolution.
    std::size_t histogram_bins = Histogram01::kDefaultBins;

    /// Slot count for the Shannon-entropy metric (Section 7 uses 10).
    std::size_t shannon_slots = 10;

    /// Threads for the per-Delta fan-out; 0 = hardware concurrency, 1 =
    /// fully sequential (no pool threads are spawned).
    std::size_t num_threads = 0;

    /// Intra-scan column parallelism (temporal/column_shards): any value
    /// other than 1 (the default) lets evaluate() decompose the dense scans
    /// of a narrow Delta grid — one narrower than the pool, which
    /// whole-period tasks alone cannot keep busy — into per-column-shard
    /// tasks, fanned out over at most scan_threads workers (0 = hardware
    /// concurrency) of the SAME num_threads-wide pool.  num_threads stays
    /// THE overall concurrency (and engine-memory) cap, so with
    /// num_threads == 1 this option is inert.  Results are bit-identical
    /// for every (num_threads, scan_threads) combination: the shard
    /// structure depends on n alone, partials merge in fixed ascending
    /// order, and the histogram accumulators are split-invariant.
    std::size_t scan_threads = 1;

    /// Reachability backend of the per-Delta scans.  `automatic` picks dense
    /// or sparse from n and event density (temporal/reachability_backend);
    /// the evaluated points are bit-identical either way, but the sparse
    /// backend bounds per-worker memory by the reachable-pair count instead
    /// of threads x n^2 x 12 B.
    ReachabilityBackend backend = ReachabilityBackend::automatic;

    /// How aggregate() materializes each snapshot list.  The enumerators
    /// live at namespace scope now (natscale/sweep_config.hpp, shared with
    /// SweepConfig); the nested names remain as aliases for existing
    /// callers.  All three modes produce bit-identical GraphSeries (hence
    /// bit-identical evaluated points).
    ///
    /// Note that pair-index aggregate() allocates a transient 4 B/event
    /// slot array per call (per worker under evaluate()); on traces where
    /// that matters, prefer chunked — which `automatic` picks for mmap
    /// sources anyway.
    using Aggregation = SweepAggregation;
    Aggregation aggregation = Aggregation::automatic;

    /// Where the pair-order index lives (pair_index mode only); see
    /// IndexSpillMode in natscale/sweep_config.hpp.
    using IndexSpill = IndexSpillMode;
    IndexSpill index_spill = IndexSpill::automatic;
};

class DeltaSweepEngine {
public:
    /// Indexes `stream` for repeated aggregation: one O(E log E) pair-order
    /// sort, amortized over every subsequent evaluate()/aggregate() call.
    /// In chunked mode (the automatic choice for mmap-backed streams) no
    /// index is built at all and each aggregate() is one sequential pass.
    /// The stream must outlive the engine.
    /// Preconditions: pair_index mode supports at most 2^32 - 1 events;
    /// chunked mode has no such limit.
    explicit DeltaSweepEngine(const LinkStream& stream, DeltaSweepOptions options = {});

    const LinkStream& stream() const noexcept { return *stream_; }
    const DeltaSweepOptions& options() const noexcept { return options_; }

    /// Evaluates every period of `grid` (occupancy histogram + all five
    /// uniformity metrics), in grid order.  When `histograms_out` is
    /// non-null it receives the per-period occupancy histograms, aligned
    /// with the returned points.  Periods are independent, so they run in
    /// parallel; the result is identical for any thread count.
    /// Preconditions: every delta >= 1.
    std::vector<DeltaPoint> evaluate(std::span<const Time> grid,
                                     std::vector<Histogram01>* histograms_out = nullptr);

    /// Shared-buffer aggregation at one period: same GraphSeries as
    /// linkstream/aggregation's aggregate(stream, delta), built in O(E)
    /// from the precomputed pair order.  Thread-safe (const).
    /// Preconditions: delta >= 1.
    GraphSeries aggregate(Time delta) const;

    /// True when aggregate() goes through the pair-order index (resolved
    /// from options().aggregation and the stream's storage at
    /// construction).
    bool uses_pair_index() const noexcept { return use_pair_index_; }

    /// True when the pair-order index lives in a spilled temp-file mapping
    /// rather than RAM.
    bool index_spilled() const noexcept { return index_spill_ != nullptr; }

private:
    ThreadPool& pool();
    void build_pair_index();

    /// The narrow-grid path of evaluate(): dense per-Delta scans split into
    /// column-shard tasks, sparse ones kept whole, all fanned out together.
    std::vector<DeltaPoint> evaluate_sharded(std::span<const Time> grid,
                                             std::vector<Histogram01>* histograms_out,
                                             ThreadPool& workers);

    const LinkStream* stream_;
    DeltaSweepOptions options_;
    bool use_pair_index_ = true;

    /// Event indices sorted by (u, v, t) — the stable pair-order view of
    /// the shared time-sorted event buffer.  Backed by either the in-RAM
    /// vector or the spilled mapping; empty in chunked mode.
    std::span<const std::uint32_t> pair_order_;
    std::vector<std::uint32_t> pair_order_storage_;
    std::unique_ptr<MappedFile> index_spill_;

    /// Created on first evaluate(); aggregate()-only users never pay for
    /// pool threads.
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace natscale
