// Uniform human-readable reporting of occupancy-method results, shared by
// the CLI example and the benchmark harness.
#pragma once

#include <iosfwd>
#include <string>

#include "core/saturation.hpp"
#include "linkstream/stream_stats.hpp"

namespace natscale {

/// Prints the dataset header line the benches use:
/// "irvine: n=1509 events=48,000 T=1175.0h activity=0.66 msg/node/day".
void print_stream_summary(std::ostream& os, const std::string& name, const StreamStats& stats,
                          double ticks_per_second = 1.0);

/// Prints gamma, the metric curve (delta | metric | trips) and the selected
/// distribution's headline numbers.  `ticks_per_second` converts the
/// stream's ticks for the human-readable duration column.
void print_saturation_report(std::ostream& os, const SaturationResult& result,
                             double ticks_per_second = 1.0);

/// One-line summary: "gamma = 64800 ticks (18.0h), M-K proximity 0.412".
std::string saturation_summary(const SaturationResult& result, double ticks_per_second = 1.0);

}  // namespace natscale
