#include "core/validation.hpp"

#include <optional>

#include "core/delta_sweep.hpp"
#include "linkstream/aggregation.hpp"
#include "stats/exact_sum.hpp"
#include "temporal/reachability_backend.hpp"
#include "temporal/sharded_scan.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace natscale {

std::vector<LostTransitionPoint> lost_transitions_curve(const ShortestTransitionSet& set,
                                                        const std::vector<Time>& deltas) {
    std::vector<LostTransitionPoint> curve;
    curve.reserve(deltas.size());
    for (Time delta : deltas) {
        curve.push_back({delta, set.lost_fraction(delta)});
    }
    return curve;
}

std::vector<LostTransitionPoint> lost_transitions_curve(const LinkStream& stream,
                                                        const std::vector<Time>& deltas) {
    const ShortestTransitionSet set(stream);
    return lost_transitions_curve(set, deltas);
}

namespace {

/// Per-scan (or per column shard) elongation partial.  The sum is exact and
/// order-independent (stats/exact_sum.hpp), so merging shard partials — in
/// any order — reproduces the unsharded accumulation bit-for-bit.
struct ElongationPartial {
    ExactSum sum;
    std::uint64_t measured = 0;
};

/// Adds one minimal trip's elongation term; shared by the sequential and
/// column-sharded paths so both accumulate the identical quantity.
void accumulate_elongation(const MinimalTrip& trip, Time delta, const StreamTripStore& store,
                           ElongationPartial& partial) {
    if (trip.dep == trip.arr) return;  // e_P defined only for t_u != t_v
    // Absolute time window spanned by the trip.  Definition 8 writes the
    // interval as [(t_u - 1) Delta, t_v Delta]; with integer ticks the
    // instants belonging to windows t_u..t_v are exactly
    // [(t_u - 1) Delta, t_v Delta - 1] — the literal right endpoint is
    // the first instant of window t_v + 1, which the trip does not span
    // (and a direct link there would make time_L zero).
    const Time window_begin = (trip.dep - 1) * delta;
    const Time window_end = trip.arr * delta - 1;
    const auto stream_duration =
        store.min_duration_within(trip.u, trip.v, window_begin, window_end);
    // A minimal series trip always embeds a stream trip in its window
    // (each hop's window holds at least one matching event, at strictly
    // increasing times); duration > 0 because a zero-duration stream trip
    // (a single link) would make the multi-window series trip non-minimal.
    NATSCALE_CHECK(stream_duration.has_value());
    NATSCALE_CHECK(*stream_duration > 0);
    const double span_ticks =
        static_cast<double>(trip.arr - trip.dep + 1) * static_cast<double>(delta);
    partial.sum.add(span_ticks / static_cast<double>(*stream_duration));
    ++partial.measured;
}

ElongationPoint point_of(Time delta, const ElongationPartial& partial) {
    ElongationPoint point;
    point.delta = delta;
    point.measured_trips = partial.measured;
    point.mean_elongation =
        partial.measured == 0
            ? 0.0
            : partial.sum.value() / static_cast<double>(partial.measured);
    return point;
}

/// Elongation of one aggregated series against the stream trip store; the
/// reachability engine is caller-provided so a sweep can reuse one per
/// worker thread.
ElongationPoint elongation_of_series(const GraphSeries& series, const StreamTripStore& store,
                                     ReachabilityEngine& engine,
                                     ReachabilityBackend backend) {
    const Time delta = series.delta();
    ReachabilityOptions options;
    options.pair_sample_divisor = store.pair_sample_divisor();
    options.backend = backend;

    ElongationPartial partial;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        accumulate_elongation(trip, delta, store, partial);
    }, options);
    return point_of(delta, partial);
}

}  // namespace

ElongationPoint elongation_at(const LinkStream& stream, Time delta,
                              const StreamTripStore& store) {
    NATSCALE_EXPECTS(delta >= 1);
    ReachabilityEngine engine;
    return elongation_of_series(aggregate(stream, delta), store, engine,
                                ReachabilityBackend::automatic);
}

std::vector<ElongationPoint> elongation_curve(const LinkStream& stream,
                                              const std::vector<Time>& deltas,
                                              const SweepConfig& options) {
    // Choose a pair-sampling divisor that keeps the store within budget.
    std::uint64_t divisor = 1;
    if (options.max_stored_trips > 0) {
        const std::uint64_t total = StreamTripStore::count_trips(stream);
        if (total > options.max_stored_trips) {
            divisor = ceil_div(static_cast<std::int64_t>(total),
                               static_cast<std::int64_t>(options.max_stored_trips));
        }
    }
    StreamTripStore::Options store_options;
    store_options.pair_sample_divisor = divisor;
    const StreamTripStore store(stream, store_options);

    // The periods are independent: share the aggregation index and fan the
    // scans out, one result slot and one reachability engine per worker.
    DeltaSweepOptions sweep_options;
    sweep_options.num_threads = options.num_threads;
    const DeltaSweepEngine shared(stream, sweep_options);

    // num_threads is THE concurrency (and memory) cap — scan_threads only
    // changes the decomposition and caps its shard-task fan-out, which
    // shares this pool.
    ThreadPool pool(options.num_threads);

    if (options.scan_threads == 1 || deltas.size() >= pool.concurrency()) {
        // Wide period list (or intra-scan parallelism disabled): one
        // whole-period task per entry.
        std::vector<ReachabilityEngine> engines(pool.concurrency());
        std::vector<ElongationPoint> curve(deltas.size());
        pool.parallel_for(deltas.size(), [&](std::size_t worker, std::size_t index) {
            curve[index] = elongation_of_series(shared.aggregate(deltas[index]), store,
                                                engines[worker], options.backend);
        });
        return curve;
    }

    // Narrow period list: split the dense scans by destination column, one
    // elongation partial per (period, shard) task, merged in ascending shard
    // order.  Bit-identical to the whole-period path (exact sums).
    std::vector<std::optional<GraphSeries>> series(deltas.size());
    pool.parallel_for(deltas.size(),
                      [&](std::size_t index) { series[index].emplace(shared.aggregate(deltas[index])); });
    std::vector<const GraphSeries*> series_ptrs(deltas.size());
    for (std::size_t d = 0; d < deltas.size(); ++d) series_ptrs[d] = &*series[d];

    ReachabilityOptions scan_options;
    scan_options.pair_sample_divisor = store.pair_sample_divisor();
    scan_options.backend = options.backend;
    const ShardedScanPlan plan = plan_sharded_scans(series_ptrs, scan_options);
    std::vector<ElongationPartial> partials(plan.tasks.size());
    run_sharded_scans(pool, series_ptrs, plan, scan_options,
                      sharded_scan_workers(options.scan_threads, deltas.size()),
                      [&](std::size_t task, const GraphSeries& s) {
                          ElongationPartial& partial = partials[task];
                          const Time delta = s.delta();
                          return [&partial, delta, &store](const MinimalTrip& trip) {
                              accumulate_elongation(trip, delta, store, partial);
                          };
                      });

    std::vector<ElongationPoint> curve(deltas.size());
    for (std::size_t d = 0; d < deltas.size(); ++d) {
        ElongationPartial merged;
        for (std::size_t t = plan.first_task[d]; t < plan.first_task[d + 1]; ++t) {
            merged.sum.merge(partials[t].sum);
            merged.measured += partials[t].measured;
        }
        curve[d] = point_of(deltas[d], merged);
    }
    return curve;
}

}  // namespace natscale
