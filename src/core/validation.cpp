#include "core/validation.hpp"

#include "core/delta_sweep.hpp"
#include "linkstream/aggregation.hpp"
#include "temporal/reachability_backend.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace natscale {

std::vector<LostTransitionPoint> lost_transitions_curve(const ShortestTransitionSet& set,
                                                        const std::vector<Time>& deltas) {
    std::vector<LostTransitionPoint> curve;
    curve.reserve(deltas.size());
    for (Time delta : deltas) {
        curve.push_back({delta, set.lost_fraction(delta)});
    }
    return curve;
}

std::vector<LostTransitionPoint> lost_transitions_curve(const LinkStream& stream,
                                                        const std::vector<Time>& deltas) {
    const ShortestTransitionSet set(stream);
    return lost_transitions_curve(set, deltas);
}

namespace {

/// Elongation of one aggregated series against the stream trip store; the
/// reachability engine is caller-provided so a sweep can reuse one per
/// worker thread.
ElongationPoint elongation_of_series(const GraphSeries& series, const StreamTripStore& store,
                                     ReachabilityEngine& engine,
                                     ReachabilityBackend backend) {
    const Time delta = series.delta();
    ElongationPoint point;
    point.delta = delta;

    ReachabilityOptions options;
    options.pair_sample_divisor = store.pair_sample_divisor();
    options.backend = backend;

    KahanSum elongation_sum;
    std::uint64_t measured = 0;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        if (trip.dep == trip.arr) return;  // e_P defined only for t_u != t_v
        // Absolute time window spanned by the trip.  Definition 8 writes the
        // interval as [(t_u - 1) Delta, t_v Delta]; with integer ticks the
        // instants belonging to windows t_u..t_v are exactly
        // [(t_u - 1) Delta, t_v Delta - 1] — the literal right endpoint is
        // the first instant of window t_v + 1, which the trip does not span
        // (and a direct link there would make time_L zero).
        const Time window_begin = (trip.dep - 1) * delta;
        const Time window_end = trip.arr * delta - 1;
        const auto stream_duration =
            store.min_duration_within(trip.u, trip.v, window_begin, window_end);
        // A minimal series trip always embeds a stream trip in its window
        // (each hop's window holds at least one matching event, at strictly
        // increasing times); duration > 0 because a zero-duration stream trip
        // (a single link) would make the multi-window series trip non-minimal.
        NATSCALE_CHECK(stream_duration.has_value());
        NATSCALE_CHECK(*stream_duration > 0);
        const double span_ticks =
            static_cast<double>(trip.arr - trip.dep + 1) * static_cast<double>(delta);
        elongation_sum.add(span_ticks / static_cast<double>(*stream_duration));
        ++measured;
    }, options);

    point.measured_trips = measured;
    point.mean_elongation =
        measured == 0 ? 0.0 : elongation_sum.value() / static_cast<double>(measured);
    return point;
}

}  // namespace

ElongationPoint elongation_at(const LinkStream& stream, Time delta,
                              const StreamTripStore& store) {
    NATSCALE_EXPECTS(delta >= 1);
    ReachabilityEngine engine;
    return elongation_of_series(aggregate(stream, delta), store, engine,
                                ReachabilityBackend::automatic);
}

std::vector<ElongationPoint> elongation_curve(const LinkStream& stream,
                                              const std::vector<Time>& deltas,
                                              const ElongationOptions& options) {
    // Choose a pair-sampling divisor that keeps the store within budget.
    std::uint64_t divisor = 1;
    if (options.max_stored_trips > 0) {
        const std::uint64_t total = StreamTripStore::count_trips(stream);
        if (total > options.max_stored_trips) {
            divisor = ceil_div(static_cast<std::int64_t>(total),
                               static_cast<std::int64_t>(options.max_stored_trips));
        }
    }
    StreamTripStore::Options store_options;
    store_options.pair_sample_divisor = divisor;
    const StreamTripStore store(stream, store_options);

    // The periods are independent: share the aggregation index and fan the
    // scans out, one result slot and one reachability engine per worker.
    DeltaSweepOptions sweep_options;
    sweep_options.num_threads = options.num_threads;
    const DeltaSweepEngine shared(stream, sweep_options);

    ThreadPool pool(options.num_threads);
    std::vector<ReachabilityEngine> engines(pool.concurrency());
    std::vector<ElongationPoint> curve(deltas.size());
    pool.parallel_for(deltas.size(), [&](std::size_t worker, std::size_t index) {
        curve[index] = elongation_of_series(shared.aggregate(deltas[index]), store,
                                            engines[worker], options.backend);
    });
    return curve;
}

}  // namespace natscale
