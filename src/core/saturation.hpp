// The occupancy method (paper Sections 4 and 7): automatic, parameter-free
// determination of the saturation scale gamma of a link stream.
//
// gamma is the aggregation period whose occupancy-rate distribution is
// maximally spread over [0, 1] — by default the period maximizing the M-K
// proximity with the uniform density.  Aggregating with Delta <= gamma
// mostly preserves the propagation properties of the stream; beyond gamma
// they are demonstrably altered (Section 8 quantifies the alteration).
//
// The search evaluates a geometric grid over [resolution, T] and then
// refines linearly around the running optimum; each evaluation is one O(nM)
// backward sweep.  All five uniformity metrics of Section 7 are recorded at
// every evaluated period so the metric-comparison figure (Fig. 7) costs no
// extra sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/delta_sweep.hpp"
#include "linkstream/link_stream.hpp"
#include "natscale/sweep_config.hpp"
#include "stats/histogram01.hpp"
#include "stats/uniformity.hpp"
#include "util/types.hpp"

namespace natscale {

/// Deprecated alias: the saturation-search knobs are the selection and
/// execution sections of the unified SweepConfig (natscale/sweep_config.hpp)
/// now.  Every field keeps its name and default, so existing callers
/// compile unchanged; new code should say SweepConfig.
using SaturationOptions = SweepConfig;

/// Sweep options matching a SweepConfig (same bins / slots / threads /
/// backend / aggregation).
DeltaSweepOptions sweep_options_of(const SweepConfig& options);

struct SaturationResult {
    /// The saturation scale gamma, in ticks.
    Time gamma = 0;

    /// Metric used for the selection.
    UniformityMetric metric = UniformityMetric::mk_proximity;

    /// Every evaluated period, sorted by delta (the Fig. 3/5 curve).
    std::vector<DeltaPoint> curve;

    /// Scores at gamma.
    DeltaPoint at_gamma;

    /// Occupancy histogram of G_gamma (the "maximally stretched" ICD of
    /// Fig. 3 left, green squares).
    Histogram01 gamma_histogram{Histogram01::kDefaultBins};

    /// argmax over the evaluated curve for any metric, in ticks (Fig. 7:
    /// what each selection method would return).  Returns 0 on empty curve.
    Time gamma_for(UniformityMetric metric) const;
};

/// Runs the occupancy method.  The whole Delta grid of each round is
/// evaluated in one batched, parallel DeltaSweepEngine pass; the result is
/// identical to the sequential per-period evaluation.  mmap-backed streams
/// (linkstream/binary_io's open_natbin) are swept out-of-core — the engine
/// picks the chunked aggregation pipeline, and gamma, the curve, and the
/// gamma histogram stay bit-identical to the in-memory path for every
/// backend and thread count.  Preconditions: stream non-empty.
SaturationResult find_saturation_scale(const LinkStream& stream,
                                       const SweepConfig& options = {});

/// Batch evaluator of one grid round: returns a DeltaPoint per period and,
/// when the pointer is non-null, the occupancy histogram each point was
/// scored from.  DeltaSweepEngine::evaluate has exactly this shape; the
/// distributed engine (dist/coordinator) provides the other implementation.
using GridEvaluator = std::function<std::vector<DeltaPoint>(
    std::span<const Time>, std::vector<Histogram01>*)>;

/// The occupancy-method search loop (coarse geometric grid + linear
/// refinement around the running optimum) over an arbitrary evaluator.
/// Every engine that can evaluate a grid batch gets the identical search —
/// and therefore the identical gamma — through this one definition;
/// find_saturation_scale is exactly this with a DeltaSweepEngine plugged
/// in.  Preconditions: 1 <= lo <= hi, coarse_points >= 2.
SaturationResult find_saturation_scale_with(const GridEvaluator& evaluate, Time lo,
                                            Time hi, const SweepConfig& options);

/// Evaluates a single aggregation period (one O(nM) sweep).  This is the
/// legacy single-period reference path — independent of DeltaSweepEngine —
/// kept as the ground truth the batched sweep is tested against.  For more
/// than a couple of periods, build a DeltaSweepEngine instead.
DeltaPoint evaluate_delta(const LinkStream& stream, Time delta,
                          const SweepConfig& options, Histogram01* histogram_out = nullptr);

}  // namespace natscale
