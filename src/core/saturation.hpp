// The occupancy method (paper Sections 4 and 7): automatic, parameter-free
// determination of the saturation scale gamma of a link stream.
//
// gamma is the aggregation period whose occupancy-rate distribution is
// maximally spread over [0, 1] — by default the period maximizing the M-K
// proximity with the uniform density.  Aggregating with Delta <= gamma
// mostly preserves the propagation properties of the stream; beyond gamma
// they are demonstrably altered (Section 8 quantifies the alteration).
//
// The search evaluates a geometric grid over [resolution, T] and then
// refines linearly around the running optimum; each evaluation is one O(nM)
// backward sweep.  All five uniformity metrics of Section 7 are recorded at
// every evaluated period so the metric-comparison figure (Fig. 7) costs no
// extra sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/delta_sweep.hpp"
#include "linkstream/link_stream.hpp"
#include "stats/histogram01.hpp"
#include "stats/uniformity.hpp"
#include "util/types.hpp"

namespace natscale {

struct SaturationOptions {
    /// Metric whose maximum defines gamma (paper default: M-K proximity).
    UniformityMetric metric = UniformityMetric::mk_proximity;

    /// Points of the initial geometric grid over [min_delta, max_delta].
    std::size_t coarse_points = 48;

    /// Linear refinement rounds around the running optimum, and points per
    /// round.  0 rounds = coarse grid only.
    std::size_t refine_rounds = 2;
    std::size_t refine_points = 12;

    /// Occupancy histogram resolution.
    std::size_t histogram_bins = Histogram01::kDefaultBins;

    /// Slot count for the Shannon-entropy metric (Section 7 uses 10).
    std::size_t shannon_slots = 10;

    /// Sweep range; 0 means "use the natural bound" (1 tick / T).
    Time min_delta = 0;
    Time max_delta = 0;

    /// Threads for the per-Delta fan-out of the grid evaluations; 0 =
    /// hardware concurrency, 1 = sequential.  The result is bit-identical
    /// for every thread count (see core/delta_sweep).
    std::size_t num_threads = 0;

    /// Intra-scan column parallelism (temporal/column_shards) for the grids
    /// that are too narrow to saturate the pool with whole-period tasks —
    /// typically the linear refinement rounds, which evaluate only the 3-8
    /// periods missing around the running optimum.  1 = disabled (default);
    /// any other value enables the decomposition, whose tasks share the
    /// num_threads-wide pool (num_threads remains the concurrency cap).
    /// gamma, the curve, and the gamma histogram are bit-identical for
    /// every value (see core/delta_sweep).
    std::size_t scan_threads = 1;

    /// Reachability backend of the per-Delta scans; `automatic` picks dense
    /// or sparse from n and event density.  gamma, the curve, and the gamma
    /// histogram are bit-identical for every choice.
    ReachabilityBackend backend = ReachabilityBackend::automatic;
};

/// Sweep options matching a SaturationOptions (same bins / slots / threads).
DeltaSweepOptions sweep_options_of(const SaturationOptions& options);

struct SaturationResult {
    /// The saturation scale gamma, in ticks.
    Time gamma = 0;

    /// Metric used for the selection.
    UniformityMetric metric = UniformityMetric::mk_proximity;

    /// Every evaluated period, sorted by delta (the Fig. 3/5 curve).
    std::vector<DeltaPoint> curve;

    /// Scores at gamma.
    DeltaPoint at_gamma;

    /// Occupancy histogram of G_gamma (the "maximally stretched" ICD of
    /// Fig. 3 left, green squares).
    Histogram01 gamma_histogram{Histogram01::kDefaultBins};

    /// argmax over the evaluated curve for any metric, in ticks (Fig. 7:
    /// what each selection method would return).  Returns 0 on empty curve.
    Time gamma_for(UniformityMetric metric) const;
};

/// Runs the occupancy method.  The whole Delta grid of each round is
/// evaluated in one batched, parallel DeltaSweepEngine pass; the result is
/// identical to the sequential per-period evaluation.  mmap-backed streams
/// (linkstream/binary_io's open_natbin) are swept out-of-core — the engine
/// picks the chunked aggregation pipeline, and gamma, the curve, and the
/// gamma histogram stay bit-identical to the in-memory path for every
/// backend and thread count.  Preconditions: stream non-empty.
SaturationResult find_saturation_scale(const LinkStream& stream,
                                       const SaturationOptions& options = {});

/// Evaluates a single aggregation period (one O(nM) sweep).  This is the
/// legacy single-period reference path — independent of DeltaSweepEngine —
/// kept as the ground truth the batched sweep is tested against.  For more
/// than a couple of periods, build a DeltaSweepEngine instead.
DeltaPoint evaluate_delta(const LinkStream& stream, Time delta,
                          const SaturationOptions& options, Histogram01* histogram_out = nullptr);

}  // namespace natscale
