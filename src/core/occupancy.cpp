#include "core/occupancy.hpp"

#include "linkstream/aggregation.hpp"
#include "temporal/reachability_backend.hpp"
#include "temporal/sharded_scan.hpp"
#include "util/thread_pool.hpp"

namespace natscale {

namespace {

ReachabilityOptions options_for(ReachabilityBackend backend) {
    ReachabilityOptions options;
    options.backend = backend;
    return options;
}

}  // namespace

Histogram01 occupancy_histogram(const GraphSeries& series, std::size_t num_bins,
                                ReachabilityBackend backend, std::size_t scan_threads) {
    const ReachabilityOptions scan_options = options_for(backend);
    const std::vector<const GraphSeries*> series_ptrs = {&series};
    const ShardedScanPlan plan = plan_sharded_scans(series_ptrs, scan_options);
    if (scan_threads == 1 || plan.tasks.size() <= 1) {
        Histogram01 hist(num_bins);
        ReachabilityEngine engine;
        engine.scan_series(series, [&](const MinimalTrip& trip) {
            hist.add(series_occupancy(trip));
        }, scan_options);
        return hist;
    }

    // Column-parallel dense scan through the shared sharded-scan driver:
    // one full backward sweep per shard, each into its own partial, merged
    // in ascending shard order.  Bit-identical to the sequential scan above
    // for every thread count (split-invariant accumulators + fixed shard
    // structure).  The pool is per call; its spawn/join cost is microseconds
    // against the multi-ms scans where sharding pays — loops over many
    // periods should use DeltaSweepEngine, which keeps one pool alive.
    ThreadPool pool(std::min<std::size_t>(ThreadPool::resolve_concurrency(scan_threads),
                                          plan.tasks.size()));
    std::vector<Histogram01> partials(plan.tasks.size(), Histogram01(num_bins));
    run_sharded_scans(pool, series_ptrs, plan, scan_options, pool.concurrency(),
                      [&](std::size_t task, const GraphSeries&) {
                          Histogram01& hist = partials[task];
                          return [&hist](const MinimalTrip& trip) {
                              hist.add(series_occupancy(trip));
                          };
                      });
    Histogram01 hist = std::move(partials.front());
    for (std::size_t s = 1; s < partials.size(); ++s) hist.merge(partials[s]);
    return hist;
}

Histogram01 occupancy_histogram(const LinkStream& stream, Time delta, std::size_t num_bins,
                                ReachabilityBackend backend, std::size_t scan_threads) {
    return occupancy_histogram(aggregate(stream, delta), num_bins, backend, scan_threads);
}

Histogram01 occupancy_histogram(const LinkStream& stream, Time delta,
                                const SweepConfig& config) {
    return occupancy_histogram(stream, delta, config.histogram_bins, config.backend,
                               config.scan_threads);
}

EmpiricalDistribution occupancy_distribution(const GraphSeries& series,
                                             ReachabilityBackend backend) {
    EmpiricalDistribution dist;
    ReachabilityEngine engine;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        dist.add(series_occupancy(trip));
    }, options_for(backend));
    return dist;
}

std::uint64_t count_minimal_trips(const GraphSeries& series, ReachabilityBackend backend) {
    std::uint64_t count = 0;
    ReachabilityEngine engine;
    engine.scan_series(series, [&](const MinimalTrip&) { ++count; }, options_for(backend));
    return count;
}

}  // namespace natscale
