#include "core/occupancy.hpp"

#include "linkstream/aggregation.hpp"
#include "temporal/reachability_backend.hpp"

namespace natscale {

namespace {

ReachabilityOptions options_for(ReachabilityBackend backend) {
    ReachabilityOptions options;
    options.backend = backend;
    return options;
}

}  // namespace

Histogram01 occupancy_histogram(const GraphSeries& series, std::size_t num_bins,
                                ReachabilityBackend backend) {
    Histogram01 hist(num_bins);
    ReachabilityEngine engine;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        hist.add(series_occupancy(trip));
    }, options_for(backend));
    return hist;
}

Histogram01 occupancy_histogram(const LinkStream& stream, Time delta, std::size_t num_bins,
                                ReachabilityBackend backend) {
    return occupancy_histogram(aggregate(stream, delta), num_bins, backend);
}

EmpiricalDistribution occupancy_distribution(const GraphSeries& series,
                                             ReachabilityBackend backend) {
    EmpiricalDistribution dist;
    ReachabilityEngine engine;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        dist.add(series_occupancy(trip));
    }, options_for(backend));
    return dist;
}

std::uint64_t count_minimal_trips(const GraphSeries& series, ReachabilityBackend backend) {
    std::uint64_t count = 0;
    ReachabilityEngine engine;
    engine.scan_series(series, [&](const MinimalTrip&) { ++count; }, options_for(backend));
    return count;
}

}  // namespace natscale
