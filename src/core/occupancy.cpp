#include "core/occupancy.hpp"

#include "linkstream/aggregation.hpp"
#include "temporal/reachability.hpp"

namespace natscale {

Histogram01 occupancy_histogram(const GraphSeries& series, std::size_t num_bins) {
    Histogram01 hist(num_bins);
    TemporalReachability engine;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        hist.add(series_occupancy(trip));
    });
    return hist;
}

Histogram01 occupancy_histogram(const LinkStream& stream, Time delta, std::size_t num_bins) {
    return occupancy_histogram(aggregate(stream, delta), num_bins);
}

EmpiricalDistribution occupancy_distribution(const GraphSeries& series) {
    EmpiricalDistribution dist;
    TemporalReachability engine;
    engine.scan_series(series, [&](const MinimalTrip& trip) {
        dist.add(series_occupancy(trip));
    });
    return dist;
}

std::uint64_t count_minimal_trips(const GraphSeries& series) {
    std::uint64_t count = 0;
    TemporalReachability engine;
    engine.scan_series(series, [&](const MinimalTrip&) { ++count; });
    return count;
}

}  // namespace natscale
