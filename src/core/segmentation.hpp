// Activity segmentation: the paper's second perspective (Section 9).
//
// The occupancy method returns one aggregation scale for the whole stream;
// on temporally heterogeneous streams (day/night, bursts) the highly active
// parts — "likely to contain a valuable information for the whole dynamics"
// — may still be smoothed out when the low-activity share is large.  The
// paper proposes to "separate the high activity periods from the lower
// activity periods and to determine an appropriate aggregation scale for
// each of these parts independently", then either aggregate everything at
// the smallest scale or aggregate each part with its own window.
//
// This module implements that proposal:
//   1. the period of study is probed with coarse bins and the bin rates are
//      split into two regimes by Otsu's criterion (maximum between-class
//      variance) — with a bimodality guard so homogeneous streams stay one
//      regime;
//   2. the events of each regime are compacted into a contiguous sub-stream
//      (segment gaps removed, so the method sees each regime's own density);
//   3. the occupancy method runs per regime, yielding gamma_high/gamma_low
//      and the safe recommendation min(gamma_high, gamma_low).
#pragma once

#include <vector>

#include "core/saturation.hpp"
#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

/// One maximal run of probe bins classified into the same activity regime.
struct ActivitySegment {
    Time begin = 0;
    Time end = 0;              // exclusive
    bool high_activity = false;
    double events_per_tick = 0.0;
};

struct SegmentationOptions {
    /// Number of equal probe bins over [0, T).  Finer bins track shorter
    /// bursts but are noisier; ~10 bins per expected activity period works.
    std::size_t probe_bins = 200;

    /// A split is accepted only when the high-regime mean rate exceeds the
    /// low-regime mean by this factor; otherwise the stream is classified as
    /// a single (high) regime — Poisson noise on a homogeneous stream must
    /// not fabricate regimes.
    double min_rate_ratio = 2.0;
};

/// Splits [0, T) into contiguous activity segments.  Always returns at
/// least one segment; a homogeneous stream yields exactly one high-activity
/// segment covering the whole period.
std::vector<ActivitySegment> segment_by_activity(const LinkStream& stream,
                                                 const SegmentationOptions& options = {});

/// Extracts and time-compacts all events falling into the segments of one
/// regime: the k-th selected segment is shifted so segments abut.  Returns
/// an empty stream (period 1) if the regime has no segments.
LinkStream compact_regime(const LinkStream& stream,
                          const std::vector<ActivitySegment>& segments, bool high_activity);

struct SegmentedSaturation {
    std::vector<ActivitySegment> segments;
    bool split = false;       // false: homogeneous, only gamma_high is set
    Time gamma_high = 0;      // saturation scale of the high-activity regime
    Time gamma_low = 0;       // of the low-activity regime (0 if absent)
    /// The safe whole-stream choice the paper suggests: the smallest present
    /// per-regime scale ("the one that better preserves the information").
    Time recommended = 0;
};

/// Runs segmentation + the occupancy method per regime.
SegmentedSaturation find_segmented_saturation(
    const LinkStream& stream, const SegmentationOptions& seg_options = {},
    const SaturationOptions& sat_options = {});

}  // namespace natscale
