#include "core/segmentation.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/contracts.hpp"

namespace natscale {

namespace {

/// Otsu's 1-D threshold on raw values: returns the split value maximizing
/// the between-class variance, or nullopt when fewer than 2 distinct values.
std::optional<double> otsu_threshold(std::vector<double> values) {
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n < 2 || values.front() == values.back()) return std::nullopt;

    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + values[i];
    const double total = prefix[n];

    double best_score = -1.0;
    std::size_t best_split = 1;  // first `split` values in the low class
    for (std::size_t split = 1; split < n; ++split) {
        if (values[split - 1] == values[split]) continue;  // not a boundary
        const double w0 = static_cast<double>(split);
        const double w1 = static_cast<double>(n - split);
        const double mu0 = prefix[split] / w0;
        const double mu1 = (total - prefix[split]) / w1;
        const double score = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if (score > best_score) {
            best_score = score;
            best_split = split;
        }
    }
    // Threshold between the two classes' boundary values.
    return (values[best_split - 1] + values[best_split]) / 2.0;
}

}  // namespace

std::vector<ActivitySegment> segment_by_activity(const LinkStream& stream,
                                                 const SegmentationOptions& options) {
    NATSCALE_EXPECTS(options.probe_bins >= 2);
    NATSCALE_EXPECTS(options.min_rate_ratio >= 1.0);
    const Time T = stream.period_end();
    const std::size_t bins = std::min<std::size_t>(options.probe_bins,
                                                   static_cast<std::size_t>(T));

    // Event counts per probe bin.
    std::vector<double> rates(bins, 0.0);
    const double bin_width = static_cast<double>(T) / static_cast<double>(bins);
    for (const auto& e : stream.events()) {
        auto idx = static_cast<std::size_t>(static_cast<double>(e.t) / bin_width);
        if (idx >= bins) idx = bins - 1;
        rates[idx] += 1.0;
    }
    for (double& r : rates) r /= bin_width;

    // Two-regime split with a bimodality guard.
    const auto threshold = otsu_threshold(rates);
    std::vector<bool> is_high(bins, true);
    bool split_accepted = false;
    if (threshold) {
        double low_sum = 0.0, high_sum = 0.0;
        std::size_t low_count = 0, high_count = 0;
        for (double r : rates) {
            if (r <= *threshold) {
                low_sum += r;
                ++low_count;
            } else {
                high_sum += r;
                ++high_count;
            }
        }
        if (low_count > 0 && high_count > 0) {
            const double low_mean = low_sum / static_cast<double>(low_count);
            const double high_mean = high_sum / static_cast<double>(high_count);
            // Guard 1: the regimes differ by the requested factor.
            const bool ratio_ok =
                high_mean >= options.min_rate_ratio * std::max(low_mean, 1e-12);
            // Guard 2: the separation exceeds Poisson noise.  Bin counts of a
            // homogeneous stream are ~Poisson(lambda); Otsu will still split
            // them, but with class means within a few sqrt(lambda) of each
            // other.  Work in counts: a real regime change separates the
            // class means by much more than the count fluctuation scale.
            const double high_counts = high_mean * bin_width;
            const double low_counts = low_mean * bin_width;
            const bool significant =
                (high_counts - low_counts) >= 3.0 * std::sqrt(std::max(high_counts, 1.0));
            if (ratio_ok && significant) {
                split_accepted = true;
                for (std::size_t i = 0; i < bins; ++i) is_high[i] = rates[i] > *threshold;
            }
        }
    }
    (void)split_accepted;

    // Merge consecutive bins of the same class into segments.
    std::vector<ActivitySegment> segments;
    std::size_t run_begin = 0;
    for (std::size_t i = 1; i <= bins; ++i) {
        if (i == bins || is_high[i] != is_high[run_begin]) {
            ActivitySegment seg;
            seg.begin = static_cast<Time>(std::llround(bin_width * static_cast<double>(run_begin)));
            seg.end = i == bins
                          ? T
                          : static_cast<Time>(std::llround(bin_width * static_cast<double>(i)));
            seg.high_activity = is_high[run_begin];
            double events_in = 0.0;
            for (std::size_t b = run_begin; b < i; ++b) events_in += rates[b] * bin_width;
            seg.events_per_tick =
                seg.end > seg.begin ? events_in / static_cast<double>(seg.end - seg.begin) : 0.0;
            segments.push_back(seg);
            run_begin = i;
        }
    }
    NATSCALE_ENSURES(!segments.empty());
    NATSCALE_ENSURES(segments.front().begin == 0 && segments.back().end == T);
    return segments;
}

LinkStream compact_regime(const LinkStream& stream,
                          const std::vector<ActivitySegment>& segments, bool high_activity) {
    std::vector<Event> events;
    const auto all = stream.events();
    Time offset = 0;
    for (const auto& seg : segments) {
        if (seg.high_activity != high_activity) continue;
        // Events are time-sorted: binary search the segment's run.
        const auto first = std::lower_bound(
            all.begin(), all.end(), seg.begin,
            [](const Event& e, Time t) { return e.t < t; });
        for (auto it = first; it != all.end() && it->t < seg.end; ++it) {
            events.push_back({it->u, it->v, it->t - seg.begin + offset});
        }
        offset += seg.end - seg.begin;
    }
    if (offset == 0) return LinkStream({}, stream.num_nodes(), 1, stream.directed());
    return LinkStream(std::move(events), stream.num_nodes(), offset, stream.directed());
}

SegmentedSaturation find_segmented_saturation(const LinkStream& stream,
                                              const SegmentationOptions& seg_options,
                                              const SaturationOptions& sat_options) {
    NATSCALE_EXPECTS(!stream.empty());
    SegmentedSaturation result;
    result.segments = segment_by_activity(stream, seg_options);

    bool has_low = false;
    for (const auto& seg : result.segments) has_low |= !seg.high_activity;
    result.split = has_low;

    const LinkStream high = compact_regime(stream, result.segments, true);
    if (!high.empty()) {
        result.gamma_high = find_saturation_scale(high, sat_options).gamma;
    }
    if (has_low) {
        const LinkStream low = compact_regime(stream, result.segments, false);
        if (!low.empty()) {
            result.gamma_low = find_saturation_scale(low, sat_options).gamma;
        }
    }
    if (result.gamma_high > 0 && result.gamma_low > 0) {
        result.recommended = std::min(result.gamma_high, result.gamma_low);
    } else {
        result.recommended = std::max(result.gamma_high, result.gamma_low);
    }
    NATSCALE_ENSURES(result.recommended > 0);
    return result;
}

}  // namespace natscale
