#include "core/delta_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "linkstream/aggregation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "temporal/minimal_trip.hpp"
#include "temporal/reachability_backend.hpp"
#include "temporal/sharded_scan.hpp"
#include "util/contracts.hpp"
#include "util/simd.hpp"

namespace natscale {

namespace {

/// Writes the sorted index to an unlinked temp file and maps it back, so
/// the 4 B/event stop being anonymous (unswappable-without-swap) RAM and
/// become clean, evictable file pages.  Spilling is an optimization, never
/// a requirement: any failure (unwritable temp dir, fd exhaustion, no real
/// mmap on the platform) returns nullptr and the caller keeps the in-RAM
/// vector.
std::unique_ptr<MappedFile> spill_index(const std::vector<std::uint32_t>& index) noexcept {
    static std::atomic<unsigned> counter{0};
    try {
#ifdef _WIN32
        const unsigned long long pid = 0;
#else
        const auto pid = static_cast<unsigned long long>(::getpid());
#endif
        // pid + process-local counter: unique across concurrent processes
        // sharing TMPDIR and across engines within this process.
        const auto path = std::filesystem::temp_directory_path() /
                          ("natscale_pair_index_" + std::to_string(pid) + "_" +
                           std::to_string(counter.fetch_add(1)) + ".bin");
        {
            std::ofstream os(path, std::ios::binary | std::ios::trunc);
            if (!os) return nullptr;
            os.write(reinterpret_cast<const char*>(index.data()),
                     static_cast<std::streamsize>(index.size() * sizeof(std::uint32_t)));
            if (!os) {
                os.close();
                std::error_code ec;
                std::filesystem::remove(path, ec);
                return nullptr;
            }
        }
        auto mapping = std::make_unique<MappedFile>(MappedFile::open(path.string()));
        // Unlink immediately: the mapping keeps the inode alive (POSIX), and
        // the file can never leak.  Where unlink-while-mapped is unsupported
        // the remove simply fails and the temp dir gets a stray file; ignore.
        std::error_code ec;
        std::filesystem::remove(path, ec);
        if (!mapping->is_mapped()) return nullptr;  // heap fallback: keep the vector
        return mapping;
    } catch (...) {
        return nullptr;
    }
}

}  // namespace

DeltaPoint score_delta_point(Time delta, const Histogram01& histogram,
                             std::size_t shannon_slots) {
    DeltaPoint point;
    point.delta = delta;
    point.scores = compute_all_metrics(histogram, shannon_slots);
    point.num_trips = histogram.total();
    point.occupancy_mean = histogram.mean();
    return point;
}

DeltaSweepEngine::DeltaSweepEngine(const LinkStream& stream, DeltaSweepOptions options)
    : stream_(&stream), options_(options) {
    using Aggregation = DeltaSweepOptions::Aggregation;
    use_pair_index_ =
        options_.aggregation == Aggregation::pair_index ||
        (options_.aggregation == Aggregation::automatic && stream.source().memory_resident());
    if (use_pair_index_) build_pair_index();
}

void DeltaSweepEngine::build_pair_index() {
    const auto events = stream_->events();
    NATSCALE_EXPECTS(events.size() <= std::numeric_limits<std::uint32_t>::max());
    pair_order_storage_.resize(events.size());
    for (std::uint32_t i = 0; i < pair_order_storage_.size(); ++i) pair_order_storage_[i] = i;
    // Events are (t, u, v)-sorted; a stable sort by endpoints yields the
    // (u, v, t) order, so within a pair the window index is nondecreasing
    // for any Delta — the per-(pair, window) dedup in aggregate() is one
    // comparison.
    std::stable_sort(pair_order_storage_.begin(), pair_order_storage_.end(),
                     [&events](std::uint32_t a, std::uint32_t b) {
                         return events[a].u != events[b].u ? events[a].u < events[b].u
                                                          : events[a].v < events[b].v;
                     });

    using IndexSpill = DeltaSweepOptions::IndexSpill;
    const bool want_spill =
        options_.index_spill == IndexSpill::always ||
        (options_.index_spill == IndexSpill::automatic && !stream_->source().memory_resident());
    if (want_spill && !pair_order_storage_.empty()) {
        index_spill_ = spill_index(pair_order_storage_);
    }
    if (index_spill_ != nullptr) {
        pair_order_ = std::span<const std::uint32_t>(
            reinterpret_cast<const std::uint32_t*>(index_spill_->data()),
            index_spill_->size() / sizeof(std::uint32_t));
        pair_order_storage_ = {};  // release the in-RAM copy
    } else {
        pair_order_ = pair_order_storage_;
    }
}

GraphSeries DeltaSweepEngine::aggregate(Time delta) const {
    NATSCALE_EXPECTS(delta >= 1);
    if (!use_pair_index_) {
        // Chunked mode: the window-sequential out-of-core pipeline, which
        // releases consumed mmap pages behind its scan.  Bit-identical to
        // the pair-index path (both emit sorted, deduplicated edge lists).
        return natscale::aggregate(*stream_, delta);
    }
    const auto events = stream_->events();

    // Pass 1 (time order): non-empty windows are contiguous runs, which
    // yields the snapshot list already sorted by window index, plus each
    // event's snapshot slot for O(1) lookup in pass 2.
    std::vector<Snapshot> snapshots;
    std::vector<std::uint32_t> slot_of_event(events.size());
    std::size_t i = 0;
    while (i < events.size()) {
        const WindowIndex k = window_of(events[i].t, delta);
        const auto slot = static_cast<std::uint32_t>(snapshots.size());
        snapshots.push_back(Snapshot{k, {}});
        while (i < events.size() && window_of(events[i].t, delta) == k) {
            slot_of_event[i] = slot;
            ++i;
        }
    }

    // Pass 2 (pair order): append each (pair, window) occurrence once.
    // Pairs arrive in increasing (u, v), so every snapshot's edge list comes
    // out sorted and deduplicated with no per-window sort.
    bool have_prev = false;
    Event prev_event{};
    std::uint32_t prev_slot = 0;
    for (const std::uint32_t index : pair_order_) {
        const Event& e = events[index];
        const std::uint32_t slot = slot_of_event[index];
        if (have_prev && prev_event.u == e.u && prev_event.v == e.v && prev_slot == slot) {
            continue;
        }
        snapshots[slot].edges.emplace_back(e.u, e.v);
        have_prev = true;
        prev_event = e;
        prev_slot = slot;
    }

    return GraphSeries(stream_->num_nodes(), num_windows(stream_->period_end(), delta),
                       delta, stream_->directed(), std::move(snapshots));
}

ThreadPool& DeltaSweepEngine::pool() {
    if (pool_ == nullptr) {
        // num_threads is THE concurrency (and therefore memory) cap: one
        // dense engine is cloned per pool worker, so the pool is never
        // widened beyond it.  scan_threads only changes how the work is
        // decomposed — the shard tasks of the narrow-grid path share this
        // same pool.
        pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    return *pool_;
}

std::vector<DeltaPoint> DeltaSweepEngine::evaluate(std::span<const Time> grid,
                                                   std::vector<Histogram01>* histograms_out) {
    std::vector<DeltaPoint> points(grid.size());
    if (histograms_out != nullptr) {
        histograms_out->assign(grid.size(), Histogram01(options_.histogram_bins));
    }
    if (grid.empty()) return points;

    ThreadPool& workers = pool();
    if (options_.scan_threads != 1 && grid.size() < workers.concurrency()) {
        // Narrow grid: whole-period tasks alone cannot keep the pool busy,
        // so split the dense scans by destination column.  Bit-identical to
        // the outer path (the shard partition is a function of n, partials
        // merge in fixed ascending order, and the accumulators are
        // split-invariant).
        return evaluate_sharded(grid, histograms_out, workers);
    }
    // One reusable reachability engine per worker: its state (dense table
    // or sparse rows, per the selected backend) is allocated on the worker's
    // first period and reused for every later one.
    std::vector<ReachabilityEngine> engines(workers.concurrency());
    ReachabilityOptions scan_options;
    scan_options.backend = options_.backend;

    static obs::Counter& deltas_evaluated = obs::counter("sweep.deltas_evaluated");
    static obs::LatencyHistogram& scan_ns = obs::histogram("sweep.delta_scan_ns");
    workers.parallel_for(grid.size(), [&](std::size_t worker, std::size_t index) {
        obs::Span span("sweep.delta");
        if (span.active()) {
            span.attr("delta", static_cast<std::int64_t>(grid[index]));
            span.attr("simd", to_string(active_simd_isa()));
        }
        const std::uint64_t scan_start = obs::TraceSink::now_ns();
        const GraphSeries series = aggregate(grid[index]);
        Histogram01 hist(options_.histogram_bins);
        engines[worker].scan_series(
            series, [&](const MinimalTrip& trip) { hist.add(series_occupancy(trip)); },
            scan_options);
        if (span.active()) {
            span.attr("backend",
                      engines[worker].last_backend() == ReachabilityBackend::dense
                          ? "dense"
                          : "sparse");
        }
        deltas_evaluated.add();
        scan_ns.record(obs::TraceSink::now_ns() - scan_start);

        points[index] = score_delta_point(grid[index], hist, options_.shannon_slots);
        if (histograms_out != nullptr) (*histograms_out)[index] = std::move(hist);
    });
    return points;
}

std::vector<DeltaPoint> DeltaSweepEngine::evaluate_sharded(
    std::span<const Time> grid, std::vector<Histogram01>* histograms_out,
    ThreadPool& workers) {
    // 1. Materialize every period's series (they are all needed at once and
    //    the grid is narrow, so the footprint is bounded).
    std::vector<std::optional<GraphSeries>> series(grid.size());
    workers.parallel_for(grid.size(),
                         [&](std::size_t index) { series[index].emplace(aggregate(grid[index])); });
    std::vector<const GraphSeries*> series_ptrs(grid.size());
    for (std::size_t g = 0; g < grid.size(); ++g) series_ptrs[g] = &*series[g];

    // 2. Plan + fan out through the shared sharded-scan driver
    //    (temporal/sharded_scan.hpp): dense scans split per column shard,
    //    sparse ones stay whole, each task writing its own histogram
    //    partial.
    ReachabilityOptions scan_options;
    scan_options.backend = options_.backend;
    const ShardedScanPlan plan = plan_sharded_scans(series_ptrs, scan_options);
    std::vector<Histogram01> partials(plan.tasks.size(),
                                      Histogram01(options_.histogram_bins));
    run_sharded_scans(workers, series_ptrs, plan, scan_options,
                      sharded_scan_workers(options_.scan_threads, grid.size()),
                      [&](std::size_t task, const GraphSeries&) {
                          Histogram01& hist = partials[task];
                          return [&hist](const MinimalTrip& trip) {
                              hist.add(series_occupancy(trip));
                          };
                      });

    // 3. Merge each period's partials in ascending shard order and score.
    static obs::Counter& deltas_evaluated = obs::counter("sweep.deltas_evaluated");
    deltas_evaluated.add(grid.size());
    std::vector<DeltaPoint> points(grid.size());
    for (std::size_t g = 0; g < grid.size(); ++g) {
        Histogram01 hist = std::move(partials[plan.first_task[g]]);
        for (std::size_t t = plan.first_task[g] + 1; t < plan.first_task[g + 1]; ++t) {
            hist.merge(partials[t]);
        }
        points[g] = score_delta_point(grid[g], hist, options_.shannon_slots);
        if (histograms_out != nullptr) (*histograms_out)[g] = std::move(hist);
    }
    return points;
}

}  // namespace natscale
