#include "core/export.hpp"

#include "natscale/report_schema.hpp"
#include "util/json.hpp"

namespace natscale {

std::string saturation_result_to_json(const SaturationResult& result) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", kReportSchemaVersion);
    json.field("gamma_ticks", static_cast<std::int64_t>(result.gamma));
    json.field("metric", metric_name(result.metric));
    json.field("num_trips_at_gamma", static_cast<std::uint64_t>(result.at_gamma.num_trips));
    json.field("mk_proximity_at_gamma", result.at_gamma.scores.mk_proximity);
    json.begin_array("curve");
    for (const auto& point : result.curve) {
        json.begin_object();
        write_delta_point_fields(json, point);
        json.end_object();
    }
    json.end_array();
    json.begin_array("icd_at_gamma");
    for (const auto& [x, y] : result.gamma_histogram.icd_points()) {
        json.begin_object();
        json.field("occupancy", x);
        json.field("icd", y);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

std::string stream_stats_to_json(const StreamStats& stats) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", kReportSchemaVersion);
    json.field("num_nodes", static_cast<std::uint64_t>(stats.num_nodes));
    json.field("num_events", static_cast<std::uint64_t>(stats.num_events));
    json.field("period_end_ticks", static_cast<std::int64_t>(stats.period_end));
    json.field("duration_days", stats.duration_days);
    json.field("active_nodes", static_cast<std::uint64_t>(stats.active_nodes));
    json.field("events_per_node_per_day", stats.events_per_node_per_day);
    json.field("mean_intercontact_ticks", stats.mean_intercontact_ticks);
    json.end_object();
    return json.str();
}

std::string segmented_saturation_to_json(const SegmentedSaturation& result) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", kReportSchemaVersion);
    json.field("split", result.split);
    json.field("gamma_high_ticks", static_cast<std::int64_t>(result.gamma_high));
    json.field("gamma_low_ticks", static_cast<std::int64_t>(result.gamma_low));
    json.field("recommended_ticks", static_cast<std::int64_t>(result.recommended));
    json.begin_array("segments");
    for (const auto& seg : result.segments) {
        json.begin_object();
        json.field("begin", static_cast<std::int64_t>(seg.begin));
        json.field("end", static_cast<std::int64_t>(seg.end));
        json.field("high_activity", seg.high_activity);
        json.field("events_per_tick", seg.events_per_tick);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

}  // namespace natscale
