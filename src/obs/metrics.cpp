#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace natscale::obs {

std::size_t thread_ordinal() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

namespace {

/// Name -> instrument tables.  unique_ptr values keep instrument
/// addresses stable across rehashing/insertion; entries are never
/// erased, so returned references live for the whole process.
struct Registry {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms;
};

Registry& registry() {
    static Registry* instance = new Registry;  // leaked: outlives static dtors
    return *instance;
}

template <typename T>
T& intern(std::map<std::string, std::unique_ptr<T>, std::less<>>& table,
          std::mutex& mutex, std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = table.find(name);
    if (it != table.end()) return *it->second;
    return *table.emplace(std::string(name), std::make_unique<T>())
                .first->second;
}

}  // namespace

Counter& counter(std::string_view name) {
    Registry& reg = registry();
    return intern(reg.counters, reg.mutex, name);
}

Gauge& gauge(std::string_view name) {
    Registry& reg = registry();
    return intern(reg.gauges, reg.mutex, name);
}

LatencyHistogram& histogram(std::string_view name) {
    Registry& reg = registry();
    return intern(reg.histograms, reg.mutex, name);
}

MetricsSnapshot metrics_snapshot() {
    Registry& reg = registry();
    MetricsSnapshot snapshot;
    std::lock_guard<std::mutex> lock(reg.mutex);
    snapshot.counters.reserve(reg.counters.size());
    for (const auto& [name, instrument] : reg.counters) {
        snapshot.counters.push_back({name, instrument->read()});
    }
    snapshot.gauges.reserve(reg.gauges.size());
    for (const auto& [name, instrument] : reg.gauges) {
        snapshot.gauges.push_back({name, instrument->read()});
    }
    snapshot.histograms.reserve(reg.histograms.size());
    for (const auto& [name, instrument] : reg.histograms) {
        MetricsSnapshot::HistogramValue value;
        value.name = name;
        value.buckets = instrument->read_buckets();
        value.sum_nanos = instrument->read_sum_nanos();
        for (const auto bucket : value.buckets) value.count += bucket;
        snapshot.histograms.push_back(std::move(value));
    }
    return snapshot;
}

}  // namespace natscale::obs
