// Lock-cheap process-wide metrics registry (docs/observability.md).
//
// Three instrument kinds, all safe to hammer from any thread:
//
//   Counter  — monotonic u64, thread-sharded: add() is one relaxed
//              fetch_add on a cache-line-private cell, merged on read.
//   Gauge    — last-written i64 (watermarks, queue depths).
//   LatencyHistogram — fixed power-of-two-nanosecond buckets, sharded
//              like counters; record() is two relaxed adds.
//
// Instruments are interned by name and never deallocated, so hot paths
// register once through a function-local static and afterwards pay one
// relaxed atomic add:
//
//     static obs::Counter& scans = obs::counter("sweep.shards_scanned");
//     scans.add();
//
// Metric names are stable API once shipped — the catalogue lives in
// docs/observability.md.  snapshot() merges every shard into a plain
// value table; natscale::metrics_snapshot_json serializes it as a
// schema-1 document.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace natscale::obs {

/// Shard count for sharded instruments (power of two).  More shards
/// than typical worker-thread counts so concurrent adds rarely collide.
inline constexpr std::size_t kMetricShards = 16;

/// Stable small integer id for the calling thread, used to pick a shard
/// (and as the "tid" of trace events).  Assigned on first use.
std::size_t thread_ordinal() noexcept;

namespace detail {
struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        cells_[thread_ordinal() & (kMetricShards - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /// Merged value across all shards (each shard read relaxed).
    std::uint64_t read() const noexcept {
        std::uint64_t total = 0;
        for (const auto& cell : cells_) {
            total += cell.value.load(std::memory_order_relaxed);
        }
        return total;
    }

private:
    std::array<detail::PaddedCell, kMetricShards> cells_;
};

class Gauge {
public:
    void set(std::int64_t value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::int64_t read() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Latency histogram over fixed power-of-two nanosecond buckets: bucket
/// 0 counts 0 ns samples, bucket 1 counts 1 ns, and bucket k >= 2 counts
/// samples in [2^(k-1), 2^k) ns — the bucket index is bit_width(nanos) —
/// with the last bucket open-ended (>= ~17 s).  Bucket edges never move,
/// so two snapshots subtract meaningfully.
class LatencyHistogram {
public:
    static constexpr std::size_t kBuckets = 36;

    void record(std::uint64_t nanos) noexcept {
        const std::size_t shard = thread_ordinal() & (kMetricShards - 1);
        shards_[shard].buckets[bucket_of(nanos)].fetch_add(
            1, std::memory_order_relaxed);
        shards_[shard].sum_nanos.fetch_add(nanos, std::memory_order_relaxed);
    }

    static std::size_t bucket_of(std::uint64_t nanos) noexcept {
        if (nanos < 2) return nanos;  // 0 and 1 get their own buckets
        std::size_t bucket = 64 - static_cast<std::size_t>(
                                      __builtin_clzll(nanos));
        return bucket < kBuckets ? bucket : kBuckets - 1;
    }

    /// Merged per-bucket counts.
    std::array<std::uint64_t, kBuckets> read_buckets() const noexcept {
        std::array<std::uint64_t, kBuckets> merged{};
        for (const auto& shard : shards_) {
            for (std::size_t b = 0; b < kBuckets; ++b) {
                merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
            }
        }
        return merged;
    }

    std::uint64_t read_count() const noexcept {
        std::uint64_t total = 0;
        for (const auto bucket : read_buckets()) total += bucket;
        return total;
    }

    std::uint64_t read_sum_nanos() const noexcept {
        std::uint64_t total = 0;
        for (const auto& shard : shards_) {
            total += shard.sum_nanos.load(std::memory_order_relaxed);
        }
        return total;
    }

private:
    struct alignas(64) Shard {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> sum_nanos{0};
    };
    std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time merged view of every registered instrument, sorted by
/// name so two snapshots of identical state serialize identically.
struct MetricsSnapshot {
    struct CounterValue {
        std::string name;
        std::uint64_t value = 0;
    };
    struct GaugeValue {
        std::string name;
        std::int64_t value = 0;
    };
    struct HistogramValue {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t sum_nanos = 0;
        std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
    };
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
};

/// Interns `name` in the process-wide registry (creating the instrument
/// on first use) and returns a reference that stays valid forever.
/// Registration takes a mutex; cache the reference on hot paths.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
LatencyHistogram& histogram(std::string_view name);

/// Merges every registered instrument into a value table.
MetricsSnapshot metrics_snapshot();

}  // namespace natscale::obs
