#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstring>
#include <stdexcept>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace natscale::obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<std::uint64_t> g_next_span_id{1};

/// Innermost active span id on this thread (0 = top level).  Dormant
/// spans never touch it, so an active span constructed under a dormant
/// one links to the nearest *traced* ancestor.
thread_local std::uint64_t t_current_span = 0;

std::uint64_t monotonic_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Fixed at first use so event timestamps start near zero.
std::uint64_t process_epoch_ns() noexcept {
    static const std::uint64_t epoch = monotonic_ns();
    return epoch;
}

void write_args(std::FILE* file, const SpanRecord& record) {
    if (record.num_attrs == 0) return;
    std::fputs(",\"args\":{", file);
    for (std::size_t i = 0; i < record.num_attrs; ++i) {
        const Attr& attr = record.attrs[i];
        if (i != 0) std::fputc(',', file);
        std::fprintf(file, "\"%s\":", attr.key);
        switch (attr.kind) {
            case Attr::Kind::i64:
                std::fprintf(file, "%" PRId64, attr.i);
                break;
            case Attr::Kind::u64:
                std::fprintf(file, "%" PRIu64, attr.u);
                break;
            case Attr::Kind::f64:
                std::fprintf(file, "%.17g", attr.d);
                break;
            case Attr::Kind::text:
                std::fprintf(file, "\"%s\"",
                             json_escape(std::string(attr.text)).c_str());
                break;
            case Attr::Kind::none:
                std::fputs("null", file);
                break;
        }
    }
    std::fputc('}', file);
}

}  // namespace

void Attr::set_text(std::string_view value) noexcept {
    const std::size_t n = value.size() < sizeof(text) - 1
                              ? value.size()
                              : sizeof(text) - 1;
    std::memcpy(text, value.data(), n);
    text[n] = '\0';
    kind = Kind::text;
}

std::uint64_t TraceSink::now_ns() noexcept {
    return monotonic_ns() - process_epoch_ns();
}

TraceSink::TraceSink(const std::string& path, std::size_t ring_capacity) {
    process_epoch_ns();  // pin the epoch before the first event
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
        throw std::runtime_error("cannot open trace file '" + path + "'");
    }
    std::fputs("[\n", file_);
    ring_.resize(ring_capacity == 0 ? 1 : ring_capacity);
}

TraceSink::~TraceSink() { close(); }

void TraceSink::close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr) return;
    std::fputs("\n]\n", file_);
    std::fclose(file_);
    file_ = nullptr;
}

void TraceSink::emit(const SpanRecord& record) {
    const bool instant = record.duration_ns == 0 && record.id == 0;
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        if (!first_event_) std::fputs(",\n", file_);
        first_event_ = false;
        std::fprintf(file_, "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f",
                     record.name, instant ? "i" : "X",
                     static_cast<double>(record.start_ns) / 1e3);
        if (instant) {
            std::fputs(",\"s\":\"t\"", file_);
        } else {
            std::fprintf(file_,
                         ",\"dur\":%.3f,\"id\":%" PRIu64 ",\"parent\":%" PRIu64,
                         static_cast<double>(record.duration_ns) / 1e3,
                         record.id, record.parent);
        }
        std::fprintf(file_, ",\"pid\":%d,\"tid\":%zu",
                     static_cast<int>(::getpid()), record.thread);
        write_args(file_, record);
        std::fputc('}', file_);
    }
    ring_[ring_next_] = record;
    ring_next_ = (ring_next_ + 1) % ring_.size();
    if (ring_size_ < ring_.size()) ++ring_size_;
    ++events_written_;
}

std::vector<SpanRecord> TraceSink::recent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(ring_size_);
    const std::size_t start =
        (ring_next_ + ring_.size() - ring_size_) % ring_.size();
    for (std::size_t i = 0; i < ring_size_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

std::uint64_t TraceSink::events_written() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_written_;
}

void install_trace_sink(TraceSink* sink) noexcept {
    g_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() noexcept {
    return g_sink.load(std::memory_order_relaxed);
}

Span::Span(const char* name) noexcept {
    sink_ = trace_sink();
    if (sink_ == nullptr) return;  // dormant: one load + branch
    record_.name = name;
    record_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    record_.parent = t_current_span;
    record_.thread = thread_ordinal();
    t_current_span = record_.id;
    record_.start_ns = TraceSink::now_ns();
}

Span::~Span() noexcept {
    if (sink_ == nullptr) return;
    const std::uint64_t end_ns = TraceSink::now_ns();
    record_.duration_ns =
        end_ns > record_.start_ns ? end_ns - record_.start_ns : 1;
    t_current_span = record_.parent;
    sink_->emit(record_);
}

Attr* Span::next_attr() noexcept {
    if (sink_ == nullptr || record_.num_attrs == kMaxAttrs) return nullptr;
    return &record_.attrs[record_.num_attrs++];
}

void Span::attr(const char* key, std::int64_t value) noexcept {
    if (Attr* slot = next_attr()) {
        slot->key = key;
        slot->kind = Attr::Kind::i64;
        slot->i = value;
    }
}

void Span::attr(const char* key, std::uint64_t value) noexcept {
    if (Attr* slot = next_attr()) {
        slot->key = key;
        slot->kind = Attr::Kind::u64;
        slot->u = value;
    }
}

void Span::attr(const char* key, double value) noexcept {
    if (Attr* slot = next_attr()) {
        slot->key = key;
        slot->kind = Attr::Kind::f64;
        slot->d = value;
    }
}

void Span::attr(const char* key, std::string_view value) noexcept {
    if (Attr* slot = next_attr()) {
        slot->key = key;
        slot->set_text(value);
    }
}

Instant::Instant(const char* name) noexcept {
    sink_ = trace_sink();
    if (sink_ == nullptr) return;
    record_.name = name;
    record_.parent = t_current_span;
    record_.thread = thread_ordinal();
    record_.start_ns = TraceSink::now_ns();
}

Instant::~Instant() noexcept {
    if (sink_ == nullptr) return;
    sink_->emit(record_);
}

Instant& Instant::attr(const char* key, std::int64_t value) noexcept {
    if (sink_ != nullptr && record_.num_attrs < kMaxAttrs) {
        Attr& slot = record_.attrs[record_.num_attrs++];
        slot.key = key;
        slot.kind = Attr::Kind::i64;
        slot.i = value;
    }
    return *this;
}

Instant& Instant::attr(const char* key, std::uint64_t value) noexcept {
    if (sink_ != nullptr && record_.num_attrs < kMaxAttrs) {
        Attr& slot = record_.attrs[record_.num_attrs++];
        slot.key = key;
        slot.kind = Attr::Kind::u64;
        slot.u = value;
    }
    return *this;
}

Instant& Instant::attr(const char* key, std::string_view value) noexcept {
    if (sink_ != nullptr && record_.num_attrs < kMaxAttrs) {
        Attr& slot = record_.attrs[record_.num_attrs++];
        slot.key = key;
        slot.set_text(value);
    }
    return *this;
}

}  // namespace natscale::obs
