// Structured tracing: RAII spans emitted in Chrome trace-event format.
//
// A Span brackets a unit of work (one Δ scan, one refinement round, one
// daemon request); spans carry a process-unique id, the id of the
// enclosing span on the same thread, and up to kMaxAttrs typed
// attributes (Δ, shard range, task id, stream name, ...).  Completed
// spans go to the installed TraceSink, which appends them as Chrome
// trace-event JSON (one event per line, loadable in chrome://tracing
// and Perfetto) and keeps an in-memory ring buffer of the most recent
// spans for live introspection.
//
// Dormant by construction: all instrumentation is compiled in, but with
// no sink installed a Span constructor is one relaxed atomic load and a
// branch — attributes and the destructor short-circuit the same way, so
// instrumented code is bit-identical and within noise of uninstrumented
// code (tests/test_obs_perf.cpp guards this).  Installing a sink
// mid-flight only affects spans constructed afterwards: each span pins
// the sink it was born under.
//
//     {
//         obs::Span span("sweep.delta");
//         span.attr("delta", delta);
//         ...work...
//     }  // emitted on scope exit
//
// Instant events (obs::instant) mark moments with no duration — lease
// expiries, task requeues — with the same attribute syntax.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace natscale::obs {

inline constexpr std::size_t kMaxAttrs = 8;

/// One typed span/event attribute.  Keys must be string literals (the
/// pointer is kept, not copied); string values are truncated to fit the
/// inline buffer.
struct Attr {
    enum class Kind : std::uint8_t { none, i64, u64, f64, text };
    const char* key = nullptr;
    Kind kind = Kind::none;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0.0;
    char text[48] = {0};

    void set_text(std::string_view value) noexcept;
};

/// A finished span or instant event as stored in the sink's ring buffer.
struct SpanRecord {
    const char* name = nullptr;
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::uint64_t start_ns = 0;   // monotonic, since sink creation
    std::uint64_t duration_ns = 0;
    std::size_t thread = 0;
    std::size_t num_attrs = 0;
    std::array<Attr, kMaxAttrs> attrs{};
};

/// Appends trace events to a file as they complete and mirrors the most
/// recent ones into a fixed ring buffer.  Thread-safe; writes are
/// serialized under a mutex (tracing is opt-in, dormant paths never get
/// here).  The file is a single JSON array — "[\n" at open, one event
/// object per line, "]" at close() — so `json.load` accepts the whole
/// file and Perfetto accepts even an unterminated one after a crash.
class TraceSink {
public:
    /// Opens `path` for writing (truncates).  Throws std::runtime_error
    /// when the file cannot be opened.
    explicit TraceSink(const std::string& path, std::size_t ring_capacity = 1024);
    ~TraceSink();
    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /// Terminates the JSON array and closes the file.  Idempotent;
    /// called by the destructor when not called explicitly.
    void close();

    void emit(const SpanRecord& record);

    /// Most recent completed spans, oldest first.
    std::vector<SpanRecord> recent() const;

    std::uint64_t events_written() const;

    /// Monotonic nanoseconds since an epoch fixed at process start.
    static std::uint64_t now_ns() noexcept;

private:
    mutable std::mutex mutex_;
    std::FILE* file_ = nullptr;
    bool first_event_ = true;
    std::uint64_t events_written_ = 0;
    std::vector<SpanRecord> ring_;
    std::size_t ring_next_ = 0;
    std::size_t ring_size_ = 0;
};

/// Installs `sink` as the process-wide trace sink (nullptr uninstalls).
/// The caller keeps ownership and must keep the sink alive until after
/// uninstalling it and draining in-flight spans (in practice: install at
/// startup, uninstall before destruction at shutdown).
void install_trace_sink(TraceSink* sink) noexcept;

/// The installed sink, or nullptr when tracing is dormant.
TraceSink* trace_sink() noexcept;

inline bool tracing_enabled() noexcept { return trace_sink() != nullptr; }

class Span {
public:
    /// `name` must be a string literal (kept by pointer).
    explicit Span(const char* name) noexcept;
    ~Span() noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void attr(const char* key, std::int64_t value) noexcept;
    void attr(const char* key, std::uint64_t value) noexcept;
    void attr(const char* key, int value) noexcept {
        attr(key, static_cast<std::int64_t>(value));
    }
    void attr(const char* key, double value) noexcept;
    void attr(const char* key, std::string_view value) noexcept;

    bool active() const noexcept { return sink_ != nullptr; }
    std::uint64_t id() const noexcept { return record_.id; }

private:
    Attr* next_attr() noexcept;

    TraceSink* sink_ = nullptr;
    SpanRecord record_;
};

/// Emits a zero-duration instant event (dormant without a sink).
class Instant {
public:
    explicit Instant(const char* name) noexcept;
    ~Instant() noexcept;
    Instant(const Instant&) = delete;
    Instant& operator=(const Instant&) = delete;

    Instant& attr(const char* key, std::int64_t value) noexcept;
    Instant& attr(const char* key, std::uint64_t value) noexcept;
    Instant& attr(const char* key, std::string_view value) noexcept;

private:
    TraceSink* sink_ = nullptr;
    SpanRecord record_;
};

}  // namespace natscale::obs
