// Human-activity temporal model: circadian and weekly rhythms plus
// heavy-tailed per-user activity.
//
// The paper's four datasets are message/e-mail traces of human communities;
// their defining temporal features are (i) day/night and weekday/weekend
// cycles, (ii) a broad (Zipf-like) distribution of per-user activity, and
// (iii) reply bursts.  The replica generators combine these ingredients to
// produce link streams with the published size, duration and mean activity
// (see DESIGN.md for the substitution rationale).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace natscale {

/// Samples timestamps in [0, T) ticks whose density follows an hour-of-day
/// profile and a day-of-week profile (1 tick = 1 second).
class CircadianSampler {
public:
    struct Profile {
        /// Relative weight of each hour 0..23; defaults to a typical
        /// communication-activity curve (low at night, peaks late morning
        /// and mid-afternoon).
        std::vector<double> hour_weights;
        /// Relative weight of each weekday 0..6 (0 = Monday).
        std::vector<double> day_weights;
    };

    /// Default profile for office-hours communication.
    static Profile office_hours();
    /// Flat profile: uniform over time (for calibration tests).
    static Profile flat();

    /// Precondition: period_end >= 1; profile weights of sizes 24 and 7.
    CircadianSampler(Time period_end, const Profile& profile);

    /// One timestamp in [0, period_end).
    Time sample(Rng& rng) const;

private:
    Time period_end_ = 0;
    Time full_days_ = 0;
    WeightedSampler day_sampler_;    // which day of the period
    WeightedSampler hour_sampler_;   // which hour within the day
    std::vector<double> day_weight_of_day_;  // weight multiplier per day index
};

/// Zipf-like weights w_i proportional to 1 / (i+1)^exponent, shuffled so
/// that node ids carry no rank information.
std::vector<double> zipf_weights(std::size_t count, double exponent, Rng& rng);

}  // namespace natscale
