#include "gen/two_mode_stream.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace natscale {

LinkStream detail::two_mode_stream_impl(const TwoModeSpec& spec, std::uint64_t seed) {
    NATSCALE_EXPECTS(spec.num_nodes >= 2);
    NATSCALE_EXPECTS(spec.alternations >= 1);
    NATSCALE_EXPECTS(spec.period_end >= static_cast<Time>(spec.alternations));
    NATSCALE_EXPECTS(spec.low_activity_share >= 0.0 && spec.low_activity_share <= 1.0);

    const Time cycle = spec.period_end / static_cast<Time>(spec.alternations);
    NATSCALE_EXPECTS(cycle >= 2);
    const Time t2 = static_cast<Time>(
        std::llround(spec.low_activity_share * static_cast<double>(cycle)));
    const Time t1 = cycle - t2;

    // Fixed rates: mean links per pair per period scale with the period's
    // share of the cycle, so the instantaneous density of each mode does not
    // depend on rho.
    const double mean_high = static_cast<double>(spec.links_high) *
                             static_cast<double>(t1) / static_cast<double>(cycle);
    const double mean_low = static_cast<double>(spec.links_low) *
                            static_cast<double>(t2) / static_cast<double>(cycle);

    Rng rng(seed);
    std::vector<Event> events;

    // Poisson-many uniform links for one pair within [begin, begin + length).
    auto emit_uniform = [&](NodeId u, NodeId v, Time begin, Time length, double mean) {
        if (length <= 0 || mean <= 0.0) return;  // degenerate mode: period absent
        const std::int64_t count = rng.poisson(mean);
        for (std::int64_t i = 0; i < count; ++i) {
            const Time t = begin + rng.uniform_int(0, length - 1);
            events.push_back({u, v, t});
        }
    };

    for (std::size_t cycle_index = 0; cycle_index < spec.alternations; ++cycle_index) {
        const Time cycle_begin = static_cast<Time>(cycle_index) * cycle;
        for (NodeId u = 0; u < spec.num_nodes; ++u) {
            for (NodeId v = u + 1; v < spec.num_nodes; ++v) {
                emit_uniform(u, v, cycle_begin, t1, mean_high);
                emit_uniform(u, v, cycle_begin + t1, t2, mean_low);
            }
        }
    }
    NATSCALE_ENSURES(!events.empty());
    return LinkStream(std::move(events), spec.num_nodes, spec.period_end, /*directed=*/false);
}

// Deprecated shim; kept one PR for out-of-tree callers and bisect builds.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
LinkStream generate_two_mode_stream(const TwoModeSpec& spec, std::uint64_t seed) {
    return detail::two_mode_stream_impl(spec, seed);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace natscale
