// Internal: registration hooks of the built-in model families, called once
// by generator_registry().  Not part of the public surface — include
// gen/registry.hpp instead.
#pragma once

namespace natscale::gen {

class GeneratorRegistry;

void register_paper_models(GeneratorRegistry& registry);
void register_dynamics_models(GeneratorRegistry& registry);
void register_adversarial_models(GeneratorRegistry& registry);

}  // namespace natscale::gen
