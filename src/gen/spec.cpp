#include "gen/spec.hpp"

#include <charconv>
#include <cstdio>

namespace natscale::gen {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const std::string& expected) {
    throw gen_error("invalid value '" + value + "' for param '" + key + "' (expected " +
                    expected + ")");
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
    if (value.empty() || value[0] == '-' || value[0] == '+') return false;
    const char* first = value.data();
    const char* last = value.data() + value.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool parse_i64(const std::string& value, std::int64_t& out) {
    if (value.empty()) return false;
    const char* first = value.data();
    const char* last = value.data() + value.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool parse_f64(const std::string& value, double& out) {
    if (value.empty()) return false;
    const char* first = value.data();
    const char* last = value.data() + value.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

}  // namespace

GenSpec parse_gen_spec(const std::string& text) {
    GenSpec spec;
    const std::size_t colon = text.find(':');
    spec.model = text.substr(0, colon);
    if (spec.model.empty()) throw gen_error("empty model name in spec '" + text + "'");
    if (colon == std::string::npos) return spec;

    std::size_t pos = colon + 1;
    bool seen_seed = false;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos) comma = text.size();
        const std::string pair = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty()) {
            throw gen_error("empty param in spec '" + text + "' (expected key=value)");
        }
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw gen_error("malformed param '" + pair + "' in spec '" + text +
                            "' (expected key=value)");
        }
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "seed") {
            // seed lives in its own struct field, so the params-map duplicate
            // check below never sees it — reject repeats explicitly or a
            // second seed= silently overwrites the first (last-one-wins) and
            // the canonical echo drops a parameter the caller passed.
            if (seen_seed) {
                throw gen_error("duplicate param 'seed' in spec '" + text + "'");
            }
            seen_seed = true;
            if (!parse_u64(value, spec.seed)) {
                bad_value("seed", value, "a non-negative integer");
            }
            continue;
        }
        if (!spec.params.emplace(key, value).second) {
            throw gen_error("duplicate param '" + key + "' in spec '" + text + "'");
        }
        if (comma == text.size()) break;
    }
    return spec;
}

std::string to_string(const GenSpec& spec) {
    std::string out = spec.model;
    out += ':';
    for (const auto& [key, value] : spec.params) {
        out += key;
        out += '=';
        out += value;
        out += ',';
    }
    out += "seed=" + std::to_string(spec.seed);
    return out;
}

bool ParamReader::has(const std::string& key) const {
    return spec_.params.find(key) != spec_.params.end();
}

std::uint64_t ParamReader::get_count(const std::string& key, std::uint64_t def) const {
    const auto it = spec_.params.find(key);
    if (it == spec_.params.end()) return def;
    std::uint64_t out = 0;
    if (!parse_u64(it->second, out)) bad_value(key, it->second, "a non-negative integer");
    return out;
}

std::int64_t ParamReader::get_int(const std::string& key, std::int64_t def) const {
    const auto it = spec_.params.find(key);
    if (it == spec_.params.end()) return def;
    std::int64_t out = 0;
    if (!parse_i64(it->second, out)) bad_value(key, it->second, "an integer");
    return out;
}

Time ParamReader::get_time(const std::string& key, Time def) const {
    return get_int(key, def);
}

double ParamReader::get_double(const std::string& key, double def) const {
    const auto it = spec_.params.find(key);
    if (it == spec_.params.end()) return def;
    double out = 0.0;
    if (!parse_f64(it->second, out)) bad_value(key, it->second, "a number");
    return out;
}

std::string ParamReader::get_string(const std::string& key, const std::string& def) const {
    const auto it = spec_.params.find(key);
    return it == spec_.params.end() ? def : it->second;
}

std::string ParamReader::get_choice(const std::string& key, const std::string& def,
                                    std::initializer_list<const char*> choices) const {
    const std::string value = get_string(key, def);
    std::string expected;
    for (const char* choice : choices) {
        if (value == choice) return value;
        if (!expected.empty()) expected += '|';
        expected += choice;
    }
    bad_value(key, value, expected);
}

void ParamReader::require(bool condition, const std::string& key, const std::string& got,
                          const std::string& expected) {
    if (!condition) {
        throw gen_error("param '" + key + "' out of range: " + got + " (expected " +
                        expected + ")");
    }
}

}  // namespace natscale::gen
