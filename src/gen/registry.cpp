#include "gen/registry.hpp"

#include <stdexcept>

#include "gen/models.hpp"

namespace natscale::gen {

const char* to_string(ModelKind kind) noexcept {
    switch (kind) {
        case ModelKind::paper: return "paper";
        case ModelKind::dynamics: return "dynamics";
        case ModelKind::adversarial: return "adversarial";
    }
    return "?";
}

void GeneratorRegistry::add(GeneratorModel model) {
    if (find(model.name) != nullptr) {
        throw gen_error("duplicate generator model '" + model.name + "'");
    }
    model.params.push_back({"seed", "7", "RNG seed; same (spec, seed) = same stream"});
    models_.push_back(std::move(model));
}

const GeneratorModel* GeneratorRegistry::find(const std::string& name) const noexcept {
    for (const auto& model : models_) {
        if (model.name == name) return &model;
    }
    return nullptr;
}

GeneratedStream GeneratorRegistry::generate(const GenSpec& spec) const {
    const GeneratorModel* model = find(spec.model);
    if (model == nullptr) {
        std::string known;
        for (const auto& m : models_) {
            if (!known.empty()) known += ", ";
            known += m.name;
        }
        throw gen_error("unknown generator model '" + spec.model + "' (known: " + known +
                        ")");
    }
    for (const auto& [key, value] : spec.params) {
        bool declared = false;
        for (const auto& doc : model->params) declared = declared || doc.name == key;
        if (!declared) {
            std::string known;
            for (const auto& doc : model->params) {
                if (!known.empty()) known += ", ";
                known += doc.name;
            }
            throw gen_error("unknown param '" + key + "' for model '" + model->name +
                            "' (known: " + known + ")");
        }
    }

    GeneratedStream generated = model->generate(spec);
    GroundTruth& truth = generated.truth;
    truth.model = model->name;
    truth.spec = to_string(spec);
    truth.num_events = generated.stream.num_events();

    // A model whose report contradicts its own stream is broken, whatever
    // the spec said: fail here, not in some later consumer.
    if (truth.num_nodes != generated.stream.num_nodes() ||
        truth.period_end != generated.stream.period_end() ||
        truth.directed != generated.stream.directed()) {
        throw std::logic_error("generator model '" + model->name +
                               "' produced a stream contradicting its GroundTruth");
    }
    return generated;
}

const GeneratorRegistry& generator_registry() {
    static const GeneratorRegistry registry = [] {
        GeneratorRegistry r;
        register_paper_models(r);
        register_dynamics_models(r);
        register_adversarial_models(r);
        return r;
    }();
    return registry;
}

GeneratedStream generate_stream(const GenSpec& spec) {
    return generator_registry().generate(spec);
}

GeneratedStream generate_stream(const std::string& spec_text) {
    return generate_stream(parse_gen_spec(spec_text));
}

GeneratedStream generate_stream(const std::string& spec_text, std::uint64_t seed) {
    GenSpec spec = parse_gen_spec(spec_text);
    spec.seed = seed;
    return generate_stream(spec);
}

std::vector<GenSpec> default_corpus() {
    // One small, seconds-fast spec per model.  Seeds are pinned so even the
    // statistical invariants (burstiness, rate ordering) are deterministic.
    const char* specs[] = {
        "uniform:n=16,links=3,T=2000",
        "two_mode:n=12,alternations=4,links_high=6,links_low=1,T=4000,low_share=0.25",
        "replica:dataset=enron,scale=0.08",
        "bursty:n=12,T=4000,alpha=1.5,min_gap=8",
        "periodic:n=14,T=8000,period=2000,duty=0.5,events_high=50,events_low=0",
        "growing:n=16,T=5000,events=600",
        "merge_split:n=16,T=6000,events=700,merge_frac=0.5,cross_prob=0.3",
        "dup_heavy:n=10,T=1000,instants=4,pairs_per_instant=20,copies=4",
        "int64_edge:n=10,events=120,width=2048",
        "empty:n=8,T=1000",
        "single_instant:n=10,T=1000,events=60",
    };
    std::vector<GenSpec> corpus;
    for (const char* text : specs) corpus.push_back(parse_gen_spec(text));
    return corpus;
}

}  // namespace natscale::gen
