#include "gen/uniform_stream.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace natscale {

LinkStream detail::uniform_stream_impl(const UniformStreamSpec& spec, std::uint64_t seed) {
    NATSCALE_EXPECTS(spec.num_nodes >= 2);
    NATSCALE_EXPECTS(spec.period_end >= 1);
    NATSCALE_EXPECTS(spec.links_per_pair >= 1);

    Rng rng(seed);
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(spec.num_nodes) * (spec.num_nodes - 1) / 2 *
                   spec.links_per_pair);
    for (NodeId u = 0; u < spec.num_nodes; ++u) {
        for (NodeId v = u + 1; v < spec.num_nodes; ++v) {
            for (std::size_t i = 0; i < spec.links_per_pair; ++i) {
                const Time t = rng.uniform_int(0, spec.period_end - 1);
                events.push_back({u, v, t});
            }
        }
    }
    return LinkStream(std::move(events), spec.num_nodes, spec.period_end, /*directed=*/false);
}

// Deprecated shim: one call into the shared implementation.  Kept for one
// PR so out-of-tree callers and git-bisect builds stay green.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
LinkStream generate_uniform_stream(const UniformStreamSpec& spec, std::uint64_t seed) {
    return detail::uniform_stream_impl(spec, seed);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

double uniform_mean_intercontact(const UniformStreamSpec& spec) {
    return static_cast<double>(spec.period_end) /
           (static_cast<double>(spec.links_per_pair) *
            (static_cast<double>(spec.num_nodes) - 1.0));
}

}  // namespace natscale
