// Temporal-dynamics model family: stream shapes that stress the occupancy
// method in ways the paper's uniform/two-mode workloads do not — heavy-tailed
// inter-contact gaps ("bursty"), day-night rhythm ("periodic"), a growing
// node population ("growing") and a community merge with a structural break
// ("merge_split").  Each model's GroundTruth carries exact structural
// invariants (gap floors, silent phases, birth times, the merge barrier) so
// the corpus harness can prove the generated stream has the advertised
// dynamics, not merely the advertised size.
#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "gen/models.hpp"
#include "gen/registry.hpp"
#include "util/rng.hpp"

namespace natscale::gen {

namespace {

void require_budget(const std::string& model, double events) {
    if (!(events <= 1e9)) {
        throw gen_error("spec '" + model + "' would generate ~" +
                        std::to_string(static_cast<std::uint64_t>(events)) +
                        " events (cap 1000000000)");
    }
}

// --- bursty -----------------------------------------------------------------
//
// Per-pair renewal process with Pareto(alpha) inter-contact gaps floored at
// `min_gap`: gap = max(min_gap, min_gap * u^(-1/alpha)).  alpha in (1, 2]
// gives finite mean but very heavy tails — long silences punctuated by
// trains, the burstiness signature of human communication.

GeneratedStream make_bursty(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 20));
    const Time period_end = reader.get_time("T", 20'000);
    const double alpha = reader.get_double("alpha", 1.5);
    const Time min_gap = reader.get_time("min_gap", 8);
    ParamReader::require(n >= 2, "n", std::to_string(n), ">= 2");
    ParamReader::require(alpha > 1.0 && alpha <= 4.0, "alpha", std::to_string(alpha),
                         "in (1, 4]");
    ParamReader::require(min_gap >= 1, "min_gap", std::to_string(min_gap), ">= 1");
    ParamReader::require(period_end > 8 * min_gap, "T", std::to_string(period_end),
                         "> 8 * min_gap");
    const double pairs = static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0;
    // Pareto mean gap = min_gap * alpha / (alpha - 1).
    const double mean_gap =
        static_cast<double>(min_gap) * alpha / (alpha - 1.0);
    require_budget(spec.model, pairs * static_cast<double>(period_end) / mean_gap);

    Rng rng(spec.seed);
    std::vector<Event> events;
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            Time t = rng.uniform_int(0, 4 * min_gap);
            while (t < period_end) {
                events.push_back({u, v, t});
                const double uniform = std::max(rng.uniform01(), 1e-12);
                const double pareto =
                    static_cast<double>(min_gap) * std::pow(uniform, -1.0 / alpha);
                const Time gap = std::max(
                    min_gap,
                    static_cast<Time>(std::min(pareto, 2.0 * static_cast<double>(period_end))));
                t += gap;
            }
        }
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    // Every pair starts at t <= 4 * min_gap < T, so emits at least one event.
    truth.min_events = static_cast<std::uint64_t>(pairs);
    truth.facts["alpha"] = alpha;
    truth.facts["min_gap"] = static_cast<double>(min_gap);
    truth.invariants.push_back(
        {"per_pair_gaps_respect_floor", [min_gap](const LinkStream& stream) {
             std::map<std::pair<NodeId, NodeId>, Time> last;
             for (const auto& e : stream.events()) {
                 auto [it, fresh] = last.try_emplace({e.u, e.v}, e.t);
                 if (!fresh) {
                     if (e.t - it->second < min_gap) {
                         return "pair (" + std::to_string(e.u) + "," + std::to_string(e.v) +
                                ") has gap " + std::to_string(e.t - it->second) +
                                " < floor " + std::to_string(min_gap);
                     }
                     it->second = e.t;
                 }
             }
             return std::string();
         }});
    truth.invariants.push_back(
        {"gaps_are_bursty", [min_gap](const LinkStream& stream) {
             // Goh-Barabasi burstiness B = (sigma - mu) / (sigma + mu) over
             // all per-pair inter-contact gaps; B = 0 for Poisson, -> 1 for
             // extreme trains.  The Pareto tail keeps B well above 0.1 for
             // any realistic sample size, so a pinned-seed assertion is safe.
             std::map<std::pair<NodeId, NodeId>, Time> last;
             std::vector<double> gaps;
             for (const auto& e : stream.events()) {
                 auto [it, fresh] = last.try_emplace({e.u, e.v}, e.t);
                 if (!fresh) {
                     gaps.push_back(static_cast<double>(e.t - it->second));
                     it->second = e.t;
                 }
             }
             if (gaps.size() < 16) return std::string();  // too few gaps to judge
             const double mu =
                 std::accumulate(gaps.begin(), gaps.end(), 0.0) / static_cast<double>(gaps.size());
             double var = 0.0;
             for (double g : gaps) var += (g - mu) * (g - mu);
             var /= static_cast<double>(gaps.size());
             const double sigma = std::sqrt(var);
             const double burstiness = (sigma - mu) / (sigma + mu);
             if (burstiness < 0.1) {
                 return "burstiness " + std::to_string(burstiness) +
                        " < 0.1 — gaps look Poissonian, not heavy-tailed";
             }
             return std::string();
         }});
    truth.notes = "heavy-tailed per-pair renewal process (Pareto gaps)";
    return out;
}

// --- periodic ---------------------------------------------------------------
//
// Day-night rhythm: cycles of length `period`, the first duty * period ticks
// are the active phase (Poisson(events_high) events, uniform pairs and
// times), the rest the quiet phase (Poisson(events_low)).  events_low = 0
// yields provably silent nights — the exact invariant below.

GeneratedStream make_periodic(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 20));
    const Time period_end = reader.get_time("T", 40'000);
    const Time period = reader.get_time("period", 5'000);
    const double duty = reader.get_double("duty", 0.5);
    const double events_high = reader.get_double("events_high", 60);
    const double events_low = reader.get_double("events_low", 0);
    ParamReader::require(n >= 2, "n", std::to_string(n), ">= 2");
    ParamReader::require(period >= 2, "period", std::to_string(period), ">= 2");
    ParamReader::require(period_end >= period, "T", std::to_string(period_end),
                         ">= period");
    ParamReader::require(duty > 0.0 && duty <= 1.0, "duty", std::to_string(duty),
                         "in (0, 1]");
    ParamReader::require(events_high >= 0.0, "events_high", std::to_string(events_high),
                         ">= 0");
    ParamReader::require(events_low >= 0.0, "events_low", std::to_string(events_low),
                         ">= 0");
    const double cycles =
        static_cast<double>(period_end) / static_cast<double>(period);
    require_budget(spec.model, cycles * (events_high + events_low));

    const Time high_len = static_cast<Time>(
        std::llround(duty * static_cast<double>(period)));

    Rng rng(spec.seed);
    std::vector<Event> events;
    auto emit_phase = [&](Time begin, Time length, double mean) {
        if (length <= 0 || mean <= 0.0) return;
        const std::int64_t count = rng.poisson(mean);
        for (std::int64_t i = 0; i < count; ++i) {
            const Time t = begin + rng.uniform_int(0, length - 1);
            const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
            NodeId v;
            do {
                v = static_cast<NodeId>(rng.uniform_index(n));
            } while (v == u);
            events.push_back({u, v, t});
        }
    };
    for (Time begin = 0; begin + period <= period_end; begin += period) {
        emit_phase(begin, high_len, events_high);
        emit_phase(begin + high_len, period - high_len, events_low);
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    truth.min_events = 0;  // Poisson can draw 0 everywhere
    truth.facts["period"] = static_cast<double>(period);
    truth.facts["duty"] = duty;
    if (events_low == 0.0 && high_len < period) {
        truth.invariants.push_back(
            {"nights_are_silent", [period, high_len](const LinkStream& stream) {
                 for (const auto& e : stream.events()) {
                     if (e.t % period >= high_len) {
                         return "event at t=" + std::to_string(e.t) +
                                " falls in a quiet phase (t mod " + std::to_string(period) +
                                " = " + std::to_string(e.t % period) + " >= " +
                                std::to_string(high_len) + ")";
                     }
                 }
                 return std::string();
             }});
    }
    truth.notes = "day-night rhythm with duty-cycled Poisson activity";
    return out;
}

// --- growing ----------------------------------------------------------------
//
// Node population grows over time: node i is born at i * T / n (the first
// two at t = 0 so a pair always exists), and an event at time t only links
// nodes already born.  Stresses Definition 1's fixed node universe: late
// nodes are isolated in early windows.

GeneratedStream make_growing(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 30));
    const Time period_end = reader.get_time("T", 30'000);
    const std::uint64_t num_events = reader.get_count("events", 1'500);
    ParamReader::require(n >= 2, "n", std::to_string(n), ">= 2");
    ParamReader::require(period_end >= static_cast<Time>(n), "T",
                         std::to_string(period_end), ">= n");
    ParamReader::require(num_events >= 1, "events", std::to_string(num_events), ">= 1");
    require_budget(spec.model, static_cast<double>(num_events));

    std::vector<Time> births(n);
    for (NodeId i = 0; i < n; ++i) {
        births[i] = i < 2 ? 0
                          : static_cast<Time>(i) * period_end / static_cast<Time>(n);
    }

    Rng rng(spec.seed);
    std::vector<Event> events;
    events.reserve(num_events);
    for (std::uint64_t i = 0; i < num_events; ++i) {
        const Time t = rng.uniform_int(0, period_end - 1);
        // Number of nodes born by t; births is sorted, births[0..1] = 0.
        const auto born = static_cast<std::size_t>(
            std::upper_bound(births.begin(), births.end(), t) - births.begin());
        const NodeId u = static_cast<NodeId>(rng.uniform_index(born));
        NodeId v;
        do {
            v = static_cast<NodeId>(rng.uniform_index(born));
        } while (v == u);
        events.push_back({u, v, t});
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    truth.min_events = num_events;
    truth.max_events = num_events;
    truth.facts["final_population"] = static_cast<double>(n);
    truth.invariants.push_back(
        {"no_event_before_either_birth", [births](const LinkStream& stream) {
             for (const auto& e : stream.events()) {
                 if (e.t < births[e.u] || e.t < births[e.v]) {
                     return "event (" + std::to_string(e.u) + "," + std::to_string(e.v) +
                            ") at t=" + std::to_string(e.t) + " precedes a birth time";
                 }
             }
             return std::string();
         }});
    truth.notes = "linearly growing node population; late nodes silent early";
    return out;
}

// --- merge_split ------------------------------------------------------------
//
// Two communities (u < n/2 vs u >= n/2) that never interact before
// t_merge = merge_frac * T and mix with probability cross_prob after it.
// The merge barrier is exact: reachability across communities is impossible
// in any window entirely before t_merge, which gives the sweep a structural
// break to detect.

GeneratedStream make_merge_split(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 24));
    const Time period_end = reader.get_time("T", 20'000);
    const std::uint64_t num_events = reader.get_count("events", 1'200);
    const double merge_frac = reader.get_double("merge_frac", 0.5);
    const double cross_prob = reader.get_double("cross_prob", 0.3);
    ParamReader::require(n >= 4, "n", std::to_string(n), ">= 4");
    ParamReader::require(period_end >= 2, "T", std::to_string(period_end), ">= 2");
    ParamReader::require(num_events >= 1, "events", std::to_string(num_events), ">= 1");
    ParamReader::require(merge_frac >= 0.0 && merge_frac <= 1.0, "merge_frac",
                         std::to_string(merge_frac), "in [0, 1]");
    ParamReader::require(cross_prob >= 0.0 && cross_prob <= 1.0, "cross_prob",
                         std::to_string(cross_prob), "in [0, 1]");
    require_budget(spec.model, static_cast<double>(num_events));

    const NodeId half = n / 2;
    const Time t_merge = static_cast<Time>(
        std::llround(merge_frac * static_cast<double>(period_end)));

    Rng rng(spec.seed);
    std::vector<Event> events;
    events.reserve(num_events);
    std::uint64_t cross_events = 0;
    auto pick_in = [&](NodeId lo, NodeId hi) {  // distinct pair in [lo, hi)
        const NodeId u = lo + static_cast<NodeId>(rng.uniform_index(hi - lo));
        NodeId v;
        do {
            v = lo + static_cast<NodeId>(rng.uniform_index(hi - lo));
        } while (v == u);
        return std::pair<NodeId, NodeId>{u, v};
    };
    for (std::uint64_t i = 0; i < num_events; ++i) {
        const Time t = rng.uniform_int(0, period_end - 1);
        NodeId u, v;
        if (t >= t_merge && rng.bernoulli(cross_prob)) {
            u = static_cast<NodeId>(rng.uniform_index(half));
            v = half + static_cast<NodeId>(rng.uniform_index(n - half));
            ++cross_events;
        } else if (rng.bernoulli(0.5)) {
            std::tie(u, v) = pick_in(0, half);
        } else {
            std::tie(u, v) = pick_in(half, n);
        }
        events.push_back({u, v, t});
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    truth.min_events = num_events;
    truth.max_events = num_events;
    truth.facts["t_merge"] = static_cast<double>(t_merge);
    truth.facts["cross_events"] = static_cast<double>(cross_events);
    truth.invariants.push_back(
        {"no_cross_community_event_before_merge",
         [half, t_merge](const LinkStream& stream) {
             for (const auto& e : stream.events()) {
                 const bool cross = (e.u < half) != (e.v < half);
                 if (cross && e.t < t_merge) {
                     return "cross-community event (" + std::to_string(e.u) + "," +
                            std::to_string(e.v) + ") at t=" + std::to_string(e.t) +
                            " < t_merge=" + std::to_string(t_merge);
                 }
             }
             return std::string();
         }});
    const std::uint64_t expected_cross = cross_events;
    truth.invariants.push_back(
        {"cross_event_count_matches_fact",
         [half, expected_cross](const LinkStream& stream) {
             std::uint64_t count = 0;
             for (const auto& e : stream.events()) {
                 if ((e.u < half) != (e.v < half)) ++count;
             }
             if (count != expected_cross) {
                 return "recounted " + std::to_string(count) +
                        " cross-community events, fact says " + std::to_string(expected_cross);
             }
             return std::string();
         }});
    truth.invariants.push_back(
        {"premerge_components_stay_within_communities",
         [half, t_merge](const LinkStream& stream) {
             // Independent check via union-find over the pre-merge slice.
             std::vector<NodeId> parent(stream.num_nodes());
             for (NodeId i = 0; i < stream.num_nodes(); ++i) parent[i] = i;
             std::function<NodeId(NodeId)> find = [&](NodeId x) {
                 while (parent[x] != x) x = parent[x] = parent[parent[x]];
                 return x;
             };
             for (const auto& e : stream.events()) {
                 if (e.t >= t_merge) break;  // events are time-sorted
                 parent[find(e.u)] = find(e.v);
             }
             for (NodeId a = 0; a < half; ++a) {
                 for (NodeId b = half; b < stream.num_nodes(); ++b) {
                     if (find(a) == find(b)) {
                         return "pre-merge component spans communities (" +
                                std::to_string(a) + " ~ " + std::to_string(b) + ")";
                     }
                 }
             }
             return std::string();
         }});
    truth.notes = "two isolated communities merging at t_merge";
    return out;
}

}  // namespace

void register_dynamics_models(GeneratorRegistry& registry) {
    registry.add({"bursty",
                  ModelKind::dynamics,
                  "heavy-tailed per-pair renewal process: Pareto(alpha) inter-contact "
                  "gaps floored at min_gap",
                  {{"n", "20", "node count (>= 2)"},
                   {"T", "20000", "period of study (> 8 * min_gap)"},
                   {"alpha", "1.5", "Pareto tail exponent in (1, 4]"},
                   {"min_gap", "8", "minimum inter-contact gap per pair (>= 1)"}},
                  make_bursty});
    registry.add({"periodic",
                  ModelKind::dynamics,
                  "day-night rhythm: duty-cycled Poisson activity per cycle",
                  {{"n", "20", "node count (>= 2)"},
                   {"T", "40000", "period of study (>= period)"},
                   {"period", "5000", "cycle length (>= 2)"},
                   {"duty", "0.5", "active share of each cycle in (0, 1]"},
                   {"events_high", "60", "mean events per active phase (Poisson)"},
                   {"events_low", "0", "mean events per quiet phase (0 = silent nights)"}},
                  make_periodic});
    registry.add({"growing",
                  ModelKind::dynamics,
                  "linearly growing node population: node i born at i * T / n",
                  {{"n", "30", "final node count (>= 2)"},
                   {"T", "30000", "period of study (>= n)"},
                   {"events", "1500", "exact event count (>= 1)"}},
                  make_growing});
    registry.add({"merge_split",
                  ModelKind::dynamics,
                  "two communities isolated before t_merge = merge_frac * T, mixing "
                  "with cross_prob after",
                  {{"n", "24", "node count (>= 4); communities are u < n/2 vs rest"},
                   {"T", "20000", "period of study (>= 2)"},
                   {"events", "1200", "exact event count (>= 1)"},
                   {"merge_frac", "0.5", "merge time as a fraction of T in [0, 1]"},
                   {"cross_prob", "0.3", "post-merge cross-community probability [0, 1]"}},
                  make_merge_split});
}

}  // namespace natscale::gen
