// Adversarial corpora: degenerate stream shapes that exercise edge cases of
// the loaders, the reachability backends and the sweep engines — duplicate
// storms on a handful of instants ("dup_heavy"), timestamps at both rims of
// the int64 range ("int64_edge"), a stream with no events at all ("empty")
// and one where the whole history collapses onto a single instant
// ("single_instant").  CI runs every one of these under ASan/UBSan.
#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "gen/models.hpp"
#include "gen/registry.hpp"
#include "util/rng.hpp"

namespace natscale::gen {

namespace {

// Distinct uniform pair on [0, n); caller guarantees n >= 2.
std::pair<NodeId, NodeId> random_pair(Rng& rng, NodeId n) {
    const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
    NodeId v;
    do {
        v = static_cast<NodeId>(rng.uniform_index(n));
    } while (v == u);
    return {u, v};
}

// --- dup_heavy --------------------------------------------------------------
//
// All activity collapses onto `instants` evenly spaced timestamps; each
// instant carries `pairs_per_instant` random pairs duplicated `copies`
// times.  Stresses duplicate handling and the distinct-timestamp machinery
// (instant index, natbin validation, delta grids with T >> #instants).

GeneratedStream make_dup_heavy(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 12));
    const Time period_end = reader.get_time("T", 1'000);
    const std::uint64_t instants = reader.get_count("instants", 4);
    const std::uint64_t pairs_per_instant = reader.get_count("pairs_per_instant", 20);
    const std::uint64_t copies = reader.get_count("copies", 4);
    ParamReader::require(n >= 2, "n", std::to_string(n), ">= 2");
    ParamReader::require(instants >= 1, "instants", std::to_string(instants), ">= 1");
    ParamReader::require(pairs_per_instant >= 1, "pairs_per_instant",
                         std::to_string(pairs_per_instant), ">= 1");
    ParamReader::require(copies >= 1, "copies", std::to_string(copies), ">= 1");
    ParamReader::require(period_end > static_cast<Time>(instants), "T",
                         std::to_string(period_end), "> instants");
    const double total = static_cast<double>(instants) *
                         static_cast<double>(pairs_per_instant) *
                         static_cast<double>(copies);
    if (!(total <= 1e9)) {
        throw gen_error("spec '" + spec.model + "' would generate ~" +
                        std::to_string(static_cast<std::uint64_t>(total)) +
                        " events (cap 1000000000)");
    }

    Rng rng(spec.seed);
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(total));
    for (std::uint64_t j = 0; j < instants; ++j) {
        // Evenly spaced interior instants; distinct because T > instants.
        const Time t = static_cast<Time>(j + 1) * period_end /
                       static_cast<Time>(instants + 1);
        for (std::uint64_t p = 0; p < pairs_per_instant; ++p) {
            const auto [u, v] = random_pair(rng, n);
            for (std::uint64_t c = 0; c < copies; ++c) events.push_back({u, v, t});
        }
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    const std::uint64_t exact = instants * pairs_per_instant * copies;
    truth.min_events = exact;
    truth.max_events = exact;
    truth.max_distinct_timestamps = static_cast<std::size_t>(instants);
    truth.facts["instants"] = static_cast<double>(instants);
    truth.facts["copies"] = static_cast<double>(copies);
    truth.invariants.push_back(
        {"exactly_instants_distinct_timestamps",
         [instants](const LinkStream& stream) {
             if (stream.num_distinct_timestamps() != instants) {
                 return "stream has " + std::to_string(stream.num_distinct_timestamps()) +
                        " distinct timestamps, expected " + std::to_string(instants);
             }
             return std::string();
         }});
    truth.invariants.push_back(
        {"every_triple_multiplicity_divisible_by_copies",
         [copies](const LinkStream& stream) {
             std::map<std::tuple<NodeId, NodeId, Time>, std::uint64_t> mult;
             for (const auto& e : stream.events()) ++mult[{e.u, e.v, e.t}];
             for (const auto& [triple, count] : mult) {
                 if (count % copies != 0) {
                     return "triple multiplicity " + std::to_string(count) +
                            " is not a multiple of copies=" + std::to_string(copies);
                 }
             }
             return std::string();
         }});
    truth.notes = "duplicate storm on a few shared instants";
    return out;
}

// --- int64_edge -------------------------------------------------------------
//
// Timestamps hug both rims of a near-int64 period of study: half the events
// in [0, width), half in [T - width, T) with T defaulting to 2^62.  Any
// signed overflow in window arithmetic (t / delta, t + delta, T - delta)
// trips UBSan here.  Sweeps over this model must use a geometric grid of
// large deltas — a unit delta would imply ~4e18 windows.

GeneratedStream make_int64_edge(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 10));
    const std::uint64_t num_events = reader.get_count("events", 120);
    const Time width = reader.get_time("width", 2'048);
    const Time period_end = reader.get_time("T", Time{1} << 62);
    ParamReader::require(n >= 2, "n", std::to_string(n), ">= 2");
    ParamReader::require(num_events >= 2, "events", std::to_string(num_events), ">= 2");
    ParamReader::require(width >= 1, "width", std::to_string(width), ">= 1");
    ParamReader::require(period_end >= 2 * width, "T", std::to_string(period_end),
                         ">= 2 * width");

    Rng rng(spec.seed);
    std::vector<Event> events;
    events.reserve(num_events);
    for (std::uint64_t i = 0; i < num_events; ++i) {
        const auto [u, v] = random_pair(rng, n);
        const Time offset = rng.uniform_int(0, width - 1);
        const Time t = (i % 2 == 0) ? offset : period_end - width + offset;
        events.push_back({u, v, t});
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    truth.min_events = num_events;
    truth.max_events = num_events;
    truth.facts["width"] = static_cast<double>(width);
    truth.invariants.push_back(
        {"every_event_hugs_a_rim", [width, period_end](const LinkStream& stream) {
             for (const auto& e : stream.events()) {
                 if (e.t >= width && e.t < period_end - width) {
                     return "event at t=" + std::to_string(e.t) +
                            " is in the empty interior (width=" + std::to_string(width) + ")";
                 }
             }
             return std::string();
         }});
    truth.notes = "timestamps at both rims of a near-int64 period";
    return out;
}

// --- empty ------------------------------------------------------------------

GeneratedStream make_empty(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 8));
    const Time period_end = reader.get_time("T", 1'000);
    ParamReader::require(n >= 1, "n", std::to_string(n), ">= 1");
    ParamReader::require(period_end >= 1, "T", std::to_string(period_end), ">= 1");

    GeneratedStream out{LinkStream({}, n, period_end, /*directed=*/false), {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    truth.min_events = 0;
    truth.max_events = 0;
    truth.max_distinct_timestamps = 0;
    truth.notes = "no events at all; every window is empty";
    return out;
}

// --- single_instant ---------------------------------------------------------

GeneratedStream make_single_instant(const GenSpec& spec) {
    const ParamReader reader(spec);
    const NodeId n = static_cast<NodeId>(reader.get_count("n", 10));
    const Time period_end = reader.get_time("T", 1'000);
    const std::uint64_t num_events = reader.get_count("events", 50);
    const Time at = reader.get_time("at", period_end / 2);
    ParamReader::require(n >= 2, "n", std::to_string(n), ">= 2");
    ParamReader::require(period_end >= 1, "T", std::to_string(period_end), ">= 1");
    ParamReader::require(num_events >= 1, "events", std::to_string(num_events), ">= 1");
    ParamReader::require(at >= 0 && at < period_end, "at", std::to_string(at),
                         "in [0, T)");

    Rng rng(spec.seed);
    std::vector<Event> events;
    events.reserve(num_events);
    for (std::uint64_t i = 0; i < num_events; ++i) {
        const auto [u, v] = random_pair(rng, n);
        events.push_back({u, v, at});
    }

    GeneratedStream out{LinkStream(std::move(events), n, period_end, /*directed=*/false),
                        {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = n;
    truth.period_end = period_end;
    truth.directed = false;
    truth.min_events = num_events;
    truth.max_events = num_events;
    truth.max_distinct_timestamps = 1;
    truth.facts["at"] = static_cast<double>(at);
    truth.invariants.push_back({"all_events_share_one_instant", [at](const LinkStream& stream) {
                                    for (const auto& e : stream.events()) {
                                        if (e.t != at) {
                                            return "event at t=" + std::to_string(e.t) +
                                                   ", expected all at t=" + std::to_string(at);
                                        }
                                    }
                                    return std::string();
                                }});
    truth.notes = "entire history collapsed onto a single instant";
    return out;
}

}  // namespace

void register_adversarial_models(GeneratorRegistry& registry) {
    registry.add({"dup_heavy",
                  ModelKind::adversarial,
                  "duplicate storm: a few shared instants, every triple repeated "
                  "`copies` times",
                  {{"n", "12", "node count (>= 2)"},
                   {"T", "1000", "period of study (> instants)"},
                   {"instants", "4", "number of distinct timestamps (>= 1)"},
                   {"pairs_per_instant", "20", "random pairs per instant (>= 1)"},
                   {"copies", "4", "exact duplicates per picked pair (>= 1)"}},
                  make_dup_heavy});
    registry.add({"int64_edge",
                  ModelKind::adversarial,
                  "timestamps at both rims of a near-int64 period (T defaults to "
                  "2^62); sweeps must use coarse geometric grids",
                  {{"n", "10", "node count (>= 2)"},
                   {"events", "120", "exact event count (>= 2, split across rims)"},
                   {"width", "2048", "rim width in ticks (>= 1)"},
                   {"T", "4611686018427387904", "period of study (>= 2 * width)"}},
                  make_int64_edge});
    registry.add({"empty",
                  ModelKind::adversarial,
                  "no events at all (the natbin writer and saturation search "
                  "reject this shape; loaders must fail loudly, not crash)",
                  {{"n", "8", "node count (>= 1)"},
                   {"T", "1000", "period of study (>= 1)"}},
                  make_empty});
    registry.add({"single_instant",
                  ModelKind::adversarial,
                  "every event on one instant: occupancy is flat in delta",
                  {{"n", "10", "node count (>= 2)"},
                   {"T", "1000", "period of study (>= 1)"},
                   {"events", "50", "exact event count (>= 1)"},
                   {"at", "T/2", "the shared instant in [0, T)"}},
                  make_single_instant});
}

}  // namespace natscale::gen
