#include "gen/activity_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace natscale {

CircadianSampler::Profile CircadianSampler::office_hours() {
    Profile p;
    p.hour_weights = {
        0.20, 0.10, 0.06, 0.05, 0.05, 0.08,  // 00-05: night trough
        0.20, 0.50, 1.00, 1.60, 1.90, 1.80,  // 06-11: morning ramp and peak
        1.40, 1.60, 1.90, 1.80, 1.60, 1.30,  // 12-17: afternoon plateau
        1.00, 0.90, 0.80, 0.70, 0.50, 0.30,  // 18-23: evening decay
    };
    p.day_weights = {1.0, 1.05, 1.05, 1.0, 0.95, 0.45, 0.35};  // Mon..Sun
    return p;
}

CircadianSampler::Profile CircadianSampler::flat() {
    Profile p;
    p.hour_weights.assign(24, 1.0);
    p.day_weights.assign(7, 1.0);
    return p;
}

CircadianSampler::CircadianSampler(Time period_end, const Profile& profile)
    : period_end_(period_end) {
    NATSCALE_EXPECTS(period_end_ >= 1);
    NATSCALE_EXPECTS(profile.hour_weights.size() == 24);
    NATSCALE_EXPECTS(profile.day_weights.size() == 7);

    constexpr Time kDay = 86'400;
    full_days_ = (period_end_ + kDay - 1) / kDay;  // last day may be partial

    // Weight of each day of the period: its weekday weight, scaled by the
    // fraction of the day inside [0, T).
    std::vector<double> day_weights(static_cast<std::size_t>(full_days_));
    day_weight_of_day_.resize(day_weights.size());
    for (std::size_t d = 0; d < day_weights.size(); ++d) {
        const double weekday_weight = profile.day_weights[d % 7];
        const Time day_begin = static_cast<Time>(d) * kDay;
        const Time day_end = std::min(day_begin + kDay, period_end_);
        const double fraction =
            static_cast<double>(day_end - day_begin) / static_cast<double>(kDay);
        day_weights[d] = weekday_weight * fraction;
        day_weight_of_day_[d] = weekday_weight;
    }
    day_sampler_ = WeightedSampler(day_weights);
    hour_sampler_ = WeightedSampler(profile.hour_weights);
}

Time CircadianSampler::sample(Rng& rng) const {
    constexpr Time kDay = 86'400;
    for (;;) {
        const Time day = static_cast<Time>(day_sampler_.sample(rng));
        const Time hour = static_cast<Time>(hour_sampler_.sample(rng));
        const Time second = rng.uniform_int(0, 3'599);
        const Time t = day * kDay + hour * 3'600 + second;
        if (t < period_end_) return t;  // reject spill past a partial last day
    }
}

std::vector<double> zipf_weights(std::size_t count, double exponent, Rng& rng) {
    NATSCALE_EXPECTS(count >= 1);
    NATSCALE_EXPECTS(exponent >= 0.0);
    std::vector<double> weights(count);
    for (std::size_t i = 0; i < count; ++i) {
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    }
    rng.shuffle(weights);
    return weights;
}

}  // namespace natscale
