// The paper's synthetic families (Sections 5 and 6) as registry models:
// "uniform" and "two_mode" (Fig. 6) and "replica" (the Section 5 dataset
// substitutes).  Each model parses its typed params, calls the SAME
// implementation as the legacy entry points (detail::*_impl), and reports
// its known-by-construction ground truth — exact event counts where the
// construction fixes them, per-pair counts for uniform, phase structure
// for two_mode, pair-repetition for the replicas.
#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "gen/models.hpp"
#include "gen/registry.hpp"
#include "gen/replicas.hpp"
#include "gen/two_mode_stream.hpp"
#include "gen/uniform_stream.hpp"

namespace natscale::gen {

namespace {

constexpr std::uint64_t kMaxGeneratedEvents = 1'000'000'000ULL;

void require_event_budget(const std::string& spec_name, double events) {
    if (!(events <= static_cast<double>(kMaxGeneratedEvents))) {
        throw gen_error("spec '" + spec_name + "' would generate ~" +
                        std::to_string(static_cast<std::uint64_t>(events)) +
                        " events (cap " + std::to_string(kMaxGeneratedEvents) + ")");
    }
}

GeneratedStream make_uniform(const GenSpec& spec) {
    const ParamReader reader(spec);
    UniformStreamSpec model;
    model.num_nodes = static_cast<NodeId>(reader.get_count("n", 100));
    model.links_per_pair = reader.get_count("links", 10);
    model.period_end = reader.get_time("T", 100'000);
    ParamReader::require(model.num_nodes >= 2, "n", std::to_string(model.num_nodes), ">= 2");
    ParamReader::require(model.links_per_pair >= 1, "links",
                         std::to_string(model.links_per_pair), ">= 1");
    ParamReader::require(model.period_end >= 1, "T", std::to_string(model.period_end),
                         ">= 1");
    const double pairs = static_cast<double>(model.num_nodes) *
                         (static_cast<double>(model.num_nodes) - 1.0) / 2.0;
    require_event_budget(spec.model, pairs * static_cast<double>(model.links_per_pair));

    GeneratedStream out{detail::uniform_stream_impl(model, spec.seed), {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = model.num_nodes;
    truth.period_end = model.period_end;
    truth.directed = false;
    const std::uint64_t exact =
        static_cast<std::uint64_t>(pairs) * model.links_per_pair;
    truth.min_events = exact;
    truth.max_events = exact;
    truth.facts["mean_intercontact"] = uniform_mean_intercontact(model);
    truth.facts["links_per_pair"] = static_cast<double>(model.links_per_pair);
    const std::size_t links = model.links_per_pair;
    truth.invariants.push_back(
        {"every_pair_has_exactly_links_events", [links](const LinkStream& stream) {
             std::map<std::pair<NodeId, NodeId>, std::size_t> counts;
             for (const auto& e : stream.events()) ++counts[{e.u, e.v}];
             for (const auto& [pair, count] : counts) {
                 if (count != links) {
                     return "pair (" + std::to_string(pair.first) + "," +
                            std::to_string(pair.second) + ") has " + std::to_string(count) +
                            " events, expected " + std::to_string(links);
                 }
             }
             const std::size_t n = stream.num_nodes();
             if (counts.size() != n * (n - 1) / 2) {
                 return "only " + std::to_string(counts.size()) + " of " +
                        std::to_string(n * (n - 1) / 2) + " pairs appear";
             }
             return std::string();
         }});
    truth.notes = "time-uniform network (paper Fig. 6 left)";
    return out;
}

GeneratedStream make_two_mode(const GenSpec& spec) {
    const ParamReader reader(spec);
    TwoModeSpec model;
    model.num_nodes = static_cast<NodeId>(reader.get_count("n", 100));
    model.alternations = reader.get_count("alternations", 10);
    model.links_high = reader.get_count("links_high", 12);
    model.links_low = reader.get_count("links_low", 1);
    model.period_end = reader.get_time("T", 100'000);
    model.low_activity_share = reader.get_double("low_share", 0.5);
    ParamReader::require(model.num_nodes >= 2, "n", std::to_string(model.num_nodes), ">= 2");
    ParamReader::require(model.alternations >= 1, "alternations",
                         std::to_string(model.alternations), ">= 1");
    ParamReader::require(
        model.low_activity_share >= 0.0 && model.low_activity_share <= 1.0, "low_share",
        std::to_string(model.low_activity_share), "in [0, 1]");
    ParamReader::require(model.period_end >= static_cast<Time>(2 * model.alternations), "T",
                         std::to_string(model.period_end), ">= 2 * alternations");
    const double pairs = static_cast<double>(model.num_nodes) *
                         (static_cast<double>(model.num_nodes) - 1.0) / 2.0;
    require_event_budget(
        spec.model, pairs * static_cast<double>(model.alternations) *
                        static_cast<double>(model.links_high + model.links_low));

    GeneratedStream out{detail::two_mode_stream_impl(model, spec.seed), {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = model.num_nodes;
    truth.period_end = model.period_end;
    truth.directed = false;
    truth.min_events = 1;  // impl ENSURES non-empty
    truth.facts["low_share"] = model.low_activity_share;
    truth.facts["alternations"] = static_cast<double>(model.alternations);

    const Time cycle = model.period_end / static_cast<Time>(model.alternations);
    const Time t2 = static_cast<Time>(
        std::llround(model.low_activity_share * static_cast<double>(cycle)));
    const Time t1 = cycle - t2;
    if (model.links_low == 0 && t2 > 0 && t1 > 0) {
        // Pure-high emission: the low phases are silent by construction.
        truth.invariants.push_back(
            {"no_events_in_low_phase", [cycle, t1](const LinkStream& stream) {
                 for (const auto& e : stream.events()) {
                     if (e.t % cycle >= t1) {
                         return "event at t=" + std::to_string(e.t) +
                                " falls in a silent low phase";
                     }
                 }
                 return std::string();
             }});
    } else if (t1 > 0 && t2 > 0 && model.links_high > 2 * model.links_low &&
               model.links_low >= 1) {
        // Fixed-rate parametrization: the high-phase instantaneous rate
        // strictly dominates the low-phase one (the Fig. 6 plateau's cause).
        truth.invariants.push_back(
            {"high_phase_rate_dominates", [cycle, t1, t2](const LinkStream& stream) {
                 double high = 0.0;
                 double low = 0.0;
                 for (const auto& e : stream.events()) {
                     (e.t % cycle < t1 ? high : low) += 1.0;
                 }
                 const double high_rate = high / static_cast<double>(t1);
                 const double low_rate = low / static_cast<double>(t2);
                 if (high_rate <= low_rate) {
                     return "high-phase rate " + std::to_string(high_rate) +
                            " does not dominate low-phase rate " + std::to_string(low_rate);
                 }
                 return std::string();
             }});
    }
    truth.notes = "two-mode alternating network (paper Fig. 6 right)";
    return out;
}

const ReplicaSpec* find_replica(const std::string& dataset,
                                const std::vector<ReplicaSpec>& all) {
    for (const auto& spec : all) {
        if (spec.name == dataset) return &spec;
    }
    return nullptr;
}

GeneratedStream make_replica(const GenSpec& spec) {
    const ParamReader reader(spec);
    const std::string dataset = reader.get_choice(
        "dataset", "enron", {"irvine", "facebook", "enron", "manufacturing"});
    const double scale = reader.get_double("scale", 1.0);
    ParamReader::require(scale > 0.0 && scale <= 1.0, "scale", std::to_string(scale),
                         "in (0, 1]");

    static const std::vector<ReplicaSpec> all = all_replica_specs();
    ReplicaSpec model = *find_replica(dataset, all);
    if (scale < 1.0) model = model.scaled(scale);

    GeneratedStream out{detail::replica_impl(model, spec.seed), {}};
    GroundTruth& truth = out.truth;
    truth.num_nodes = model.num_nodes;
    truth.period_end = model.period_end;
    truth.directed = model.directed;
    truth.min_events = model.num_events;
    truth.max_events = model.num_events + 1;  // a final reply may overshoot by one
    truth.facts["activity_per_person_day"] =
        static_cast<double>(model.num_events) /
        (static_cast<double>(model.num_nodes) *
         (static_cast<double>(model.period_end) / 86'400.0));
    truth.facts["spec_events"] = static_cast<double>(model.num_events);
    truth.invariants.push_back(
        {"pairs_repeat_like_real_correspondents", [](const LinkStream& stream) {
             std::set<std::pair<NodeId, NodeId>> distinct;
             for (const auto& e : stream.events()) distinct.insert({e.u, e.v});
             if (distinct.size() * 2 >= stream.num_events()) {
                 return "only " + std::to_string(stream.num_events()) + " events over " +
                        std::to_string(distinct.size()) + " distinct pairs (no repetition)";
             }
             return std::string();
         }});
    truth.notes = "human-activity replica of the '" + dataset + "' trace (paper Section 5)";
    return out;
}

}  // namespace

void register_paper_models(GeneratorRegistry& registry) {
    registry.add({"uniform",
                  ModelKind::paper,
                  "time-uniform network: every pair gets `links` uniformly random "
                  "timestamps in [0, T)",
                  {{"n", "100", "node count (>= 2)"},
                   {"links", "10", "links per pair (exact, >= 1)"},
                   {"T", "100000", "period of study in ticks"}},
                  make_uniform});
    registry.add({"two_mode",
                  ModelKind::paper,
                  "m alternations of a high-activity and a low-activity uniform phase "
                  "with fixed instantaneous rates",
                  {{"n", "100", "node count (>= 2)"},
                   {"alternations", "10", "cycles m (>= 1)"},
                   {"links_high", "12", "links per pair per cycle at low_share = 0"},
                   {"links_low", "1", "links per pair per cycle at low_share = 1"},
                   {"T", "100000", "period of study; cycle = T / alternations"},
                   {"low_share", "0.5", "share of each cycle spent in the low phase [0, 1]"}},
                  make_two_mode});
    registry.add({"replica",
                  ModelKind::paper,
                  "circadian + Zipf + reply-burst replica of a published dataset "
                  "(directed)",
                  {{"dataset", "enron", "irvine|facebook|enron|manufacturing"},
                   {"scale", "1.0", "node/event scale factor in (0, 1]"}},
                  make_replica});
}

}  // namespace natscale::gen
