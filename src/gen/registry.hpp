// GeneratorRegistry: the factory behind every synthetic workload.
//
// A GenSpec resolves here to a GeneratedStream — the LinkStream plus its
// GroundTruth report.  Models self-describe (kind, summary, parameter docs
// with defaults), which powers `find_time_scale gen --list`, the generated
// documentation table, and strict parameter validation: a spec naming a
// parameter the model does not declare is an error, not a silent default.
//
// The built-in catalogue:
//   paper        uniform, two_mode, replica       (Sections 5 and 6)
//   dynamics     bursty, periodic, growing, merge_split
//   adversarial  dup_heavy, int64_edge, empty, single_instant
//
// Every model is deterministic for a fixed (spec, seed), and every spec in
// default_corpus() doubles as a differential-test workload for all
// reachability backends and the online engine (tests/test_gen_corpus.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gen/ground_truth.hpp"
#include "gen/spec.hpp"
#include "linkstream/link_stream.hpp"

namespace natscale::gen {

struct ParamDoc {
    std::string name;
    std::string default_value;  // human-readable ("T/2" allowed)
    std::string help;
};

enum class ModelKind { paper, dynamics, adversarial };

const char* to_string(ModelKind kind) noexcept;

struct GeneratedStream {
    LinkStream stream;
    GroundTruth truth;
};

struct GeneratorModel {
    std::string name;
    ModelKind kind = ModelKind::paper;
    std::string summary;
    std::vector<ParamDoc> params;  // `seed` is appended automatically
    std::function<GeneratedStream(const GenSpec&)> generate;
};

class GeneratorRegistry {
public:
    /// Registers a model.  Throws gen_error on duplicate names.  A `seed`
    /// ParamDoc is appended so every model documents its determinism knob.
    void add(GeneratorModel model);

    const GeneratorModel* find(const std::string& name) const noexcept;

    /// All models, in registration order (paper, dynamics, adversarial).
    const std::vector<GeneratorModel>& models() const noexcept { return models_; }

    /// Resolves a spec: unknown models and undeclared params throw
    /// gen_error; the model's stream and report are cross-checked (a model
    /// whose GroundTruth disagrees with its own stream is a logic error).
    GeneratedStream generate(const GenSpec& spec) const;

private:
    std::vector<GeneratorModel> models_;
};

/// The global registry with all built-in models registered.
const GeneratorRegistry& generator_registry();

/// generator_registry().generate(spec).
GeneratedStream generate_stream(const GenSpec& spec);

/// Convenience: parse_gen_spec + generate_stream.
GeneratedStream generate_stream(const std::string& spec_text);

/// parse_gen_spec + seed override + generate: the consumer one-liner for
/// sweeping seeds over a fixed spec ("same spec text, N runs").
GeneratedStream generate_stream(const std::string& spec_text, std::uint64_t seed);

/// The curated corpus: at least one small, fast spec per registered model
/// (coverage is asserted in tests/test_gen_corpus.cpp).  These are the
/// workloads of the corpus-wide property harness and the CI adversarial
/// job.
std::vector<GenSpec> default_corpus();

}  // namespace natscale::gen
