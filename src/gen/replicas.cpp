#include "gen/replicas.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace natscale {

ReplicaSpec ReplicaSpec::scaled(double factor) const {
    NATSCALE_EXPECTS(factor > 0.0 && factor <= 1.0);
    ReplicaSpec spec = *this;
    spec.num_nodes = std::max<NodeId>(8, static_cast<NodeId>(
        std::llround(static_cast<double>(num_nodes) * factor)));
    // Events scale with nodes so per-node activity (events / node / day) is
    // unchanged; the duration stays fixed so time scales keep their meaning.
    spec.num_events = std::max<std::size_t>(
        64, static_cast<std::size_t>(std::llround(static_cast<double>(num_events) * factor)));
    return spec;
}

ReplicaSpec irvine_spec() {
    ReplicaSpec spec;
    spec.name = "irvine";
    spec.num_nodes = 1'509;
    spec.num_events = 48'000;
    spec.period_end = 4'230'000;  // ~1175 hours (48.9 days), 1 s ticks
    spec.directed = true;
    spec.zipf_exponent = 0.90;
    spec.mean_contacts = 12.0;
    spec.reply_probability = 0.40;
    spec.mean_reply_delay = 3'600.0;  // online community: fast replies
    return spec;
}

ReplicaSpec facebook_spec() {
    ReplicaSpec spec;
    spec.name = "facebook";
    spec.num_nodes = 3'387;
    spec.num_events = 11'991;
    spec.period_end = 2'592'000;  // 1 month
    spec.directed = true;
    spec.zipf_exponent = 0.95;
    spec.mean_contacts = 8.0;
    spec.reply_probability = 0.25;
    spec.mean_reply_delay = 21'600.0;  // wall posts: slow reciprocation
    return spec;
}

ReplicaSpec enron_spec() {
    ReplicaSpec spec;
    spec.name = "enron";
    spec.num_nodes = 150;
    spec.num_events = 15'951;
    spec.period_end = 31'536'000;  // year 2001
    spec.directed = true;
    spec.zipf_exponent = 0.85;
    spec.mean_contacts = 15.0;
    spec.reply_probability = 0.35;
    spec.mean_reply_delay = 10'800.0;
    return spec;
}

ReplicaSpec manufacturing_spec() {
    ReplicaSpec spec;
    spec.name = "manufacturing";
    spec.num_nodes = 153;
    spec.num_events = 82'894;
    spec.period_end = 21'081'600;  // 244 days (~8 months)
    spec.directed = true;
    spec.zipf_exponent = 0.80;
    spec.mean_contacts = 20.0;
    spec.reply_probability = 0.45;
    spec.mean_reply_delay = 2'700.0;  // internal company mail: fast replies
    return spec;
}

std::vector<ReplicaSpec> all_replica_specs() {
    return {irvine_spec(), facebook_spec(), enron_spec(), manufacturing_spec()};
}

LinkStream detail::replica_impl(const ReplicaSpec& spec, std::uint64_t seed) {
    NATSCALE_EXPECTS(spec.num_nodes >= 2);
    NATSCALE_EXPECTS(spec.num_events >= 1);
    NATSCALE_EXPECTS(spec.period_end >= 2);

    Rng rng(seed);
    const NodeId n = spec.num_nodes;

    // Per-user activity weights and popularity weights (independent Zipf
    // ranks: prolific senders are not necessarily popular receivers).
    const auto send_weights = zipf_weights(n, spec.zipf_exponent, rng);
    const auto recv_weights = zipf_weights(n, spec.zipf_exponent, rng);
    const WeightedSampler sender_sampler(send_weights);
    const WeightedSampler receiver_sampler(recv_weights);

    // Contact circles: each user keeps a small list of favourite partners,
    // drawn by popularity, so pairs repeat the way real correspondents do.
    std::vector<std::vector<NodeId>> contacts(n);
    for (NodeId u = 0; u < n; ++u) {
        const std::int64_t circle = 1 + rng.poisson(std::max(0.0, spec.mean_contacts - 1.0));
        for (std::int64_t i = 0; i < circle; ++i) {
            const NodeId w = static_cast<NodeId>(receiver_sampler.sample(rng));
            if (w != u) contacts[u].push_back(w);
        }
        if (contacts[u].empty()) contacts[u].push_back((u + 1) % n);
    }

    const CircadianSampler clock(spec.period_end, spec.profile);

    std::vector<Event> events;
    events.reserve(spec.num_events);
    while (events.size() < spec.num_events) {
        const NodeId sender = static_cast<NodeId>(sender_sampler.sample(rng));
        NodeId receiver;
        if (rng.bernoulli(spec.in_circle_probability)) {
            receiver = contacts[sender][rng.uniform_index(contacts[sender].size())];
        } else {
            do {
                receiver = static_cast<NodeId>(receiver_sampler.sample(rng));
            } while (receiver == sender);
        }
        if (receiver == sender) continue;
        const Time t = clock.sample(rng);
        events.push_back({sender, receiver, t});

        // Reply burst: the receiver answers after a floored exponential delay.
        if (events.size() < spec.num_events && rng.bernoulli(spec.reply_probability)) {
            const double mean_tail =
                std::max(1.0, spec.mean_reply_delay - spec.min_reply_delay);
            const Time delay = static_cast<Time>(spec.min_reply_delay) +
                               static_cast<Time>(rng.exponential(1.0 / mean_tail));
            const Time reply_time = t + delay;
            if (reply_time < spec.period_end) {
                events.push_back({receiver, sender, reply_time});
            }
        }
    }
    return LinkStream(std::move(events), n, spec.period_end, spec.directed);
}

// Deprecated shim; kept one PR for out-of-tree callers and bisect builds.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
LinkStream generate_replica(const ReplicaSpec& spec, std::uint64_t seed) {
    return detail::replica_impl(spec, seed);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace natscale
