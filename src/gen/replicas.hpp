// Synthetic replicas of the four real-world traces of the paper's Section 5.
//
// The original traces (UC Irvine messages, Facebook wall posts, Enron
// e-mails, Manufacturing e-mails) are not redistributable with this
// repository; each replica generator matches the published node count,
// event count, study duration, resolution (1 s) and directedness, and
// combines the human-activity ingredients of gen/activity_model.hpp
// (circadian + weekly rhythm, Zipf user activity, social contact circles,
// reply bursts).  DESIGN.md documents why this substitution preserves the
// behaviour the occupancy method depends on; EXPERIMENTS.md records replica
// vs paper values for every figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/activity_model.hpp"
#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

struct ReplicaSpec {
    std::string name;
    NodeId num_nodes = 0;
    std::size_t num_events = 0;
    Time period_end = 0;  // ticks of 1 s
    bool directed = true;

    /// Zipf exponent of per-user activity (1.0-1.5 typical for e-mail).
    double zipf_exponent = 1.2;

    /// Mean size of a user's contact circle and probability of messaging
    /// inside it (vs a popularity-weighted random user).
    double mean_contacts = 10.0;
    double in_circle_probability = 0.8;

    /// Probability that a message triggers a reply, and mean reply delay (s).
    double reply_probability = 0.35;
    double mean_reply_delay = 5'400.0;

    /// Minimum human reaction time for a reply (s).  Real message traces
    /// contain essentially no sub-minute forwarding; without this floor the
    /// replicas exhibit crushed fast routes that real data does not have,
    /// which distorts the elongation validation (Fig. 8 right).
    double min_reply_delay = 120.0;

    CircadianSampler::Profile profile = CircadianSampler::office_hours();

    /// Scales the whole replica for quick test runs: node and event counts
    /// and duration are multiplied by `factor` in a way that preserves the
    /// per-node activity level.  factor in (0, 1].
    ReplicaSpec scaled(double factor) const;
};

/// Published parameters of the four datasets (paper Section 5):
///   Irvine:        1 509 users, 48 000 messages, ~1 175 h, 0.66 msg/p/day
///   Facebook:      3 387 users, 11 991 posts,    1 month,  0.12 msg/p/day
///   Enron:           150 employees, 15 951 mails, year 2001, 0.29 msg/p/day
///   Manufacturing:   153 employees, 82 894 mails, 8 months, 2.22 msg/p/day
ReplicaSpec irvine_spec();
ReplicaSpec facebook_spec();
ReplicaSpec enron_spec();
ReplicaSpec manufacturing_spec();

/// All four, in the order above.
std::vector<ReplicaSpec> all_replica_specs();

namespace detail {
/// Shared implementation: the registry's "replica" model and the deprecated
/// entry point below both call this, so the factory reproduces the legacy
/// streams bit for bit.
LinkStream replica_impl(const ReplicaSpec& spec, std::uint64_t seed);
}  // namespace detail

/// Generates the replica stream; deterministic for a fixed (spec, seed).
[[deprecated("use gen::generate_stream(\"replica:dataset=...,scale=...\") — "
             "see gen/registry.hpp")]]
LinkStream generate_replica(const ReplicaSpec& spec, std::uint64_t seed);

}  // namespace natscale
