// GroundTruth: what a generator knows about its stream by construction.
//
// Every registry model returns one of these next to the stream (the
// spec/report idiom of sampling-benchmark generators): the exact shape
// fields (n, T, directedness, event count), bounds that hold for every
// seed, named numeric facts (e.g. the mean inter-contact time a figure
// plots against), and a list of executable invariants.  The corpus
// harness (tests/test_gen_corpus.cpp) asserts verify() on every spec it
// sweeps, so a model whose report drifts from its stream fails loudly —
// the report is a contract, not documentation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale::gen {

/// One executable model invariant.  `check` returns an empty string when
/// the invariant holds, else a human-readable failure description.  Checks
/// run on the actual generated stream, so they are deterministic for a
/// fixed spec (statistical invariants are safe to assert: the corpus pins
/// its seeds).
struct Invariant {
    std::string name;
    std::function<std::string(const LinkStream&)> check;
};

struct GroundTruth {
    /// Filled by the registry: the resolved model name and canonical spec.
    std::string model;
    std::string spec;

    // --- exact shape (must match the stream field-for-field) ---------------
    NodeId num_nodes = 0;
    Time period_end = 0;
    bool directed = false;
    /// Exact generated event count (the registry cross-checks it).
    std::uint64_t num_events = 0;

    // --- bounds that hold for every seed ------------------------------------
    std::uint64_t min_events = 0;
    std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max();
    std::size_t max_distinct_timestamps = std::numeric_limits<std::size_t>::max();

    /// Named numeric facts (e.g. "mean_intercontact", "cross_events").
    std::map<std::string, double> facts;

    /// Executable invariants; see Invariant.
    std::vector<Invariant> invariants;

    std::string notes;

    /// Checks the exact fields, the bounds and every invariant against
    /// `stream`; returns one message per violation (empty = all good).
    std::vector<std::string> verify(const LinkStream& stream) const {
        std::vector<std::string> errors;
        auto mismatch = [&](const std::string& what, auto expected, auto got) {
            errors.push_back(what + ": expected " + std::to_string(expected) + ", got " +
                             std::to_string(got));
        };
        if (stream.num_nodes() != num_nodes) mismatch("num_nodes", num_nodes, stream.num_nodes());
        if (stream.period_end() != period_end) {
            mismatch("period_end", period_end, stream.period_end());
        }
        if (stream.directed() != directed) mismatch("directed", directed, stream.directed());
        if (stream.num_events() != num_events) {
            mismatch("num_events", num_events, stream.num_events());
        }
        if (stream.num_events() < min_events) {
            mismatch("min_events bound", min_events, stream.num_events());
        }
        if (stream.num_events() > max_events) {
            mismatch("max_events bound", max_events, stream.num_events());
        }
        if (stream.num_distinct_timestamps() > max_distinct_timestamps) {
            mismatch("max_distinct_timestamps bound", max_distinct_timestamps,
                     stream.num_distinct_timestamps());
        }
        for (const auto& invariant : invariants) {
            const std::string failure = invariant.check(stream);
            if (!failure.empty()) {
                errors.push_back("invariant '" + invariant.name + "': " + failure);
            }
        }
        return errors;
    }
};

}  // namespace natscale::gen
