// Two-mode synthetic networks (paper Section 6, Fig. 6 right).
//
// "Built by m alternations of one period of high activity and one period of
// low activity, which are time-uniform networks with parameters N1, T1 and
// N2, T2 respectively.  N1, N2 and the whole length T = m (T1 + T2) of study
// are fixed and we vary the ratio between T1 and T2."
//
// N1 and N2 parameterize the two *activity rates*: a pair receives on
// average N1 * (T1 / (T1+T2)) links per high period (so that a pure
// high-activity stream, rho = 0, carries N1 links per pair per cycle) and
// N2 * (T2 / (T1+T2)) per low period.  Holding the rates fixed while the
// ratio T1:T2 varies is what produces the paper's plateau: the high-activity
// portions keep the same instantaneous density for every rho < 1.
//
// rho = T2 / (T1 + T2) is the percentage of low-activity time.  rho = 0
// degenerates to a pure high-activity stream, rho = 1 to a pure low-activity
// one.  Per-period link counts are Poisson with the stated means.
#pragma once

#include <cstdint>

#include "linkstream/link_stream.hpp"
#include "util/types.hpp"

namespace natscale {

struct TwoModeSpec {
    NodeId num_nodes = 100;
    std::size_t alternations = 10;      // m
    std::size_t links_high = 12;        // N1: links per pair per cycle at rho = 0
    std::size_t links_low = 1;          // N2: links per pair per cycle at rho = 1
    Time period_end = 100'000;          // T = m * (T1 + T2)
    double low_activity_share = 0.5;    // rho = T2 / (T1 + T2), in [0, 1]
};

namespace detail {
/// Shared implementation: the registry's "two_mode" model and the
/// deprecated entry point below both call this, so the factory reproduces
/// the legacy streams bit for bit.
LinkStream two_mode_stream_impl(const TwoModeSpec& spec, std::uint64_t seed);
}  // namespace detail

/// Deterministic for a fixed (spec, seed).  Undirected.
[[deprecated("use gen::generate_stream(\"two_mode:n=...,low_share=...\") — "
             "see gen/registry.hpp")]]
LinkStream generate_two_mode_stream(const TwoModeSpec& spec, std::uint64_t seed);

}  // namespace natscale
