// GenSpec: the one way to name a synthetic workload.
//
// A spec is (model name, typed parameter map, seed); it resolves through
// the GeneratorRegistry (gen/registry.hpp) to a LinkStream plus a
// GroundTruth report whose invariants hold by construction.  Specs have a
// compact textual form shared by the CLI (`find_time_scale gen`), the
// benches and the test corpus:
//
//   model                      all defaults
//   model:key=value,key=value  comma-separated params
//   model:n=40,links=5,seed=3  `seed` is a reserved key feeding GenSpec::seed
//
// Parameter values are typed at the point of use via ParamReader, whose
// errors name both the value and the parameter ("invalid value 'x' for
// param 'rate' (expected a number)") so the message survives verbatim to
// the CLI exit path.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace natscale::gen {

/// Thrown on malformed specs, unknown models/params and bad values.  The
/// what() string is user-facing: the CLI prints it verbatim and exits 2.
class gen_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct GenSpec {
    std::string model;
    /// Raw key=value parameters (ordered, so the canonical echo is stable).
    /// `seed` never appears here — it is hoisted into the field below.
    std::map<std::string, std::string> params;
    std::uint64_t seed = 7;
};

/// Parses the compact form above.  Throws gen_error on empty model names,
/// malformed pairs (no '='), duplicate keys and junk seeds.
GenSpec parse_gen_spec(const std::string& text);

/// Canonical echo: "model:k=v,...,seed=N" (params in sorted order, seed
/// last, always present).  parse_gen_spec(to_string(s)) == s.
std::string to_string(const GenSpec& spec);

/// Typed access to GenSpec::params with hardened error messages.  Every
/// getter takes the default used when the key is absent; models validate
/// ranges themselves (and throw gen_error naming the param).
class ParamReader {
public:
    explicit ParamReader(const GenSpec& spec) : spec_(spec) {}

    bool has(const std::string& key) const;

    /// "invalid value 'x' for param 'k' (expected a non-negative integer)"
    std::uint64_t get_count(const std::string& key, std::uint64_t def) const;

    /// "invalid value 'x' for param 'k' (expected an integer)"
    std::int64_t get_int(const std::string& key, std::int64_t def) const;

    /// Time in ticks; same grammar as get_int.
    Time get_time(const std::string& key, Time def) const;

    /// "invalid value 'x' for param 'k' (expected a number)"
    double get_double(const std::string& key, double def) const;

    std::string get_string(const std::string& key, const std::string& def) const;

    /// Value must be one of `choices` ("a|b|c" in the error message).
    std::string get_choice(const std::string& key, const std::string& def,
                           std::initializer_list<const char*> choices) const;

    /// Range guard with a param-naming message:
    /// "param 'n' out of range: 1 (expected >= 2)".
    static void require(bool condition, const std::string& key, const std::string& got,
                        const std::string& expected);

private:
    const GenSpec& spec_;
};

}  // namespace natscale::gen
